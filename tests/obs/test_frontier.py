"""Coverage-frontier tests: attribution, plateaus, sharded merge,
campaign/heartbeat/artifact integration.

Tentpole requirements covered here:

- every coverage-contributing iteration is attributed to its frame
  composition, prog type, and origin;
- a configurable window with no new edges emits a plateau (and the
  plateau closes on recovery);
- per-shard snapshots shift to global iterations and merge
  worker-count invariantly;
- heartbeats carry the frontier state and ``repro watch`` renders
  stalled shards.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.fuzz.campaign import Campaign, CampaignConfig
from repro.obs.frontier import (
    DEFAULT_PLATEAU_WINDOW,
    FrontierTracker,
    merge_frontiers,
    render_frontier,
    shift_frontier,
)
from repro.obs.heartbeat import HeartbeatWriter, render_watch


def note(tracker, iteration, edges, frames=("basic",), prog_type="XDP",
         origin="bvf"):
    return tracker.note(iteration, edges, frames=frames,
                        prog_type=prog_type, origin=origin)


class TestTracker:
    def test_attribution(self):
        tracker = FrontierTracker()
        note(tracker, 0, 3, frames={"jump", "basic"})
        note(tracker, 1, 0)
        note(tracker, 2, 2, frames={"basic"}, prog_type="KPROBE",
             origin="bvf-mut")
        snap = tracker.snapshot()
        assert snap["iterations"] == 3
        assert snap["contributing"] == 2
        assert snap["new_edges"] == 5
        assert snap["last_new_iteration"] == 2
        # Composition key is the sorted +-join of the frame set.
        assert snap["by_frame"] == {"basic": 1, "basic+jump": 1}
        assert snap["edges_by_frame"] == {"basic": 2, "basic+jump": 3}
        assert snap["by_prog_type"] == {"KPROBE": 1, "XDP": 1}
        assert snap["by_origin"] == {"bvf": 1, "bvf-mut": 1}
        assert snap["curve"] == [[0, 3], [2, 2]]

    def test_plateau_detection_and_recovery(self):
        tracker = FrontierTracker(window=5)
        note(tracker, 0, 1)
        events = [note(tracker, i, 0) for i in range(1, 10)]
        fired = [e for e in events if e is not None]
        assert len(fired) == 1  # emitted once, not every iteration
        assert fired[0] == {"start": 1, "detected_at": 5,
                            "end": None, "length": None}
        assert tracker.stalled
        note(tracker, 10, 2)  # recovery closes the plateau
        assert not tracker.stalled
        (plateau,) = tracker.snapshot()["plateaus"]
        assert plateau["end"] == 10
        assert plateau["length"] == 9

    def test_second_plateau_after_recovery(self):
        tracker = FrontierTracker(window=3)
        note(tracker, 0, 1)
        for i in range(1, 5):
            note(tracker, i, 0)
        note(tracker, 5, 1)
        for i in range(6, 10):
            note(tracker, i, 0)
        assert len(tracker.snapshot()["plateaus"]) == 2

    def test_window_zero_disables_detection(self):
        tracker = FrontierTracker(window=0)
        for i in range(50):
            assert note(tracker, i, 0) is None
        assert tracker.snapshot()["plateaus"] == []

    def test_heartbeat_state(self):
        tracker = FrontierTracker(window=4)
        note(tracker, 0, 1)
        for i in range(1, 6):
            note(tracker, i, 0)
        state = tracker.heartbeat_state()
        assert state == {"last_new_iteration": 0, "stalled_for": 5,
                         "stalled": True, "plateaus": 1}


class TestShiftAndMerge:
    def _shard(self, offset=0):
        tracker = FrontierTracker(window=3)
        note(tracker, 0, 2)
        for i in range(1, 5):
            note(tracker, i, 0)
        return shift_frontier(tracker.snapshot(), offset)

    def test_shift_remaps_iterations(self):
        snap = self._shard(offset=100)
        assert snap["last_new_iteration"] == 100
        assert snap["curve"] == [[100, 2]]
        (plateau,) = snap["plateaus"]
        assert plateau["start"] == 101
        assert plateau["detected_at"] == 103

    def test_shift_empty(self):
        assert shift_frontier({}, 10) == {}

    def test_merge_sums_and_interleaves(self):
        merged = merge_frontiers([self._shard(0), self._shard(5), {}])
        assert merged["iterations"] == 10
        assert merged["contributing"] == 2
        assert merged["new_edges"] == 4
        assert merged["last_new_iteration"] == 5
        assert merged["by_frame"] == {"basic": 2}
        assert merged["curve"] == [[0, 2], [5, 2]]
        assert [p["start"] for p in merged["plateaus"]] == [1, 6]

    def test_merge_order_independent(self):
        a, b = self._shard(0), self._shard(5)
        assert merge_frontiers([a, b]) == merge_frontiers([b, a])

    def test_merge_all_empty(self):
        assert merge_frontiers([{}, {}]) == {}


class TestCampaignIntegration:
    @pytest.fixture(scope="class")
    def result(self):
        config = CampaignConfig(budget=60, seed=2)
        return Campaign(config).run()

    def test_frontier_snapshot_populated(self, result):
        frontier = result.frontier
        assert frontier["iterations"] == result.generated
        assert frontier["window"] == DEFAULT_PLATEAU_WINDOW
        assert frontier["contributing"] > 0
        assert frontier["by_frame"]
        assert frontier["by_prog_type"]
        assert frontier["by_origin"]

    def test_no_frontier_without_coverage(self):
        config = CampaignConfig(budget=5, seed=0, collect_coverage=False)
        assert Campaign(config).run().frontier == {}

    def test_plateau_event_emitted(self):
        # A window of 1 guarantees stalls on any non-contributing
        # iteration; the campaign must emit campaign.plateau events and
        # count them in the metrics registry.
        stream = io.StringIO()
        config = CampaignConfig(budget=40, seed=2, plateau_window=1,
                                trace_path=stream)
        result = Campaign(config).run()
        assert result.frontier["plateaus"]
        names = [json.loads(line).get("name")
                 for line in stream.getvalue().splitlines()]
        assert "campaign.plateau" in names
        plateaus = result.metrics["counters"].get("campaign.plateaus", 0)
        assert plateaus == len(result.frontier["plateaus"])

    def test_rejected_iterations_attributed(self):
        # Rejections reach the frontier too: coverage.collect() sets
        # last_new in its finally block, so contributing can exceed the
        # number of accepted programs when rejects discover edges.
        config = CampaignConfig(budget=60, seed=2, kernel_version="patched")
        result = Campaign(config).run()
        assert result.accepted < result.generated
        assert result.frontier["contributing"] > 0


class TestHeartbeatSurface:
    def test_heartbeat_carries_frontier(self, tmp_path):
        writer = HeartbeatWriter(str(tmp_path), shard_index=0, budget=10)
        writer.write(status="running", programs=5, accepted=3,
                     frontier={"last_new_iteration": 1, "stalled_for": 3,
                               "stalled": True, "plateaus": 1})
        payload = json.loads(
            (tmp_path / "shard00.heartbeat.json").read_text()
        )
        assert payload["v"] == 1
        assert payload["frontier"]["stalled"] is True
        # Deterministic field: lives at the top level, not under wall.
        assert "frontier" not in payload["wall"]

    def test_watch_renders_stalls(self):
        snapshots = [
            {"shard": 0, "status": "running", "programs": 30, "budget": 40,
             "accepted": 10,
             "frontier": {"last_new_iteration": 4, "stalled_for": 25,
                          "stalled": True, "plateaus": 2}},
            {"shard": 1, "status": "running", "programs": 30, "budget": 40,
             "accepted": 10,
             "frontier": {"last_new_iteration": 29, "stalled_for": 0,
                          "stalled": False, "plateaus": 0}},
        ]
        frame = render_watch(snapshots)
        assert "plateaus:" in frame
        assert "shard0: stalled 25 iters" in frame
        assert "shard1" not in frame.split("plateaus:")[1]

    def test_watch_without_frontier_unchanged(self):
        frame = render_watch([{"shard": 0, "status": "done",
                               "programs": 10, "budget": 10,
                               "accepted": 5}])
        assert "plateaus:" not in frame


class TestRender:
    def test_render_sections(self):
        tracker = FrontierTracker(window=2)
        note(tracker, 0, 4, frames={"basic", "call"})
        note(tracker, 1, 0)
        note(tracker, 2, 0)
        lines = render_frontier(tracker.snapshot())
        text = "\n".join(lines)
        assert "coverage frontier:" in text
        assert "basic+call" in text
        assert "still stalled" in text

    def test_render_empty_is_na(self):
        text = "\n".join(render_frontier({}))
        assert "n/a" in text
