"""Rejection-taxonomy tests.

Satellite requirement: every ``VerifierReject`` message produced by the
tier-1 corpus must map to a known reason code — ``UNCLASSIFIED`` must
not leak for any rejection the seed corpus can produce.
"""

from __future__ import annotations

import pytest

from repro.errors import BpfError, VerifierReject
from repro.fuzz.campaign import Campaign, CampaignConfig
from repro.kernel.config import PROFILES
from repro.kernel.syscall import Kernel
from repro.obs.taxonomy import (
    REASON_CODES,
    UNCLASSIFIED,
    classify,
    classify_counter,
)
from repro.testsuite import all_selftests_extended
from repro.verifier.log import final_message


class TestClassify:
    @pytest.mark.parametrize(
        "message, code",
        [
            ("R3 !read_ok", "UNINIT_REGISTER"),
            ("frame pointer is read only", "FRAME_POINTER_WRITE"),
            ("jump out of range from 3 to 99", "STRUCT_BAD_JUMP"),
            ("BPF program is too large. Processed 1000001 insn",
             "COMPLEXITY_LIMIT"),
            ("invalid access to map value, value_size=8 off=12 size=4",
             "MAP_VALUE_ACCESS"),
            ("Unreleased reference id=2", "REFERENCE_LEAK"),
        ],
    )
    def test_known_messages(self, message, code):
        assert classify(message) == code

    def test_unknown_message_is_unclassified(self):
        assert classify("the moon is made of cheese") == UNCLASSIFIED

    def test_all_codes_are_stable_identifiers(self):
        for code in REASON_CODES:
            assert code == code.upper()
            assert " " not in code

    def test_classify_counter(self):
        counts = classify_counter(["R3 !read_ok", "R1 !read_ok", "???"])
        assert counts["UNINIT_REGISTER"] == 2
        assert counts[UNCLASSIFIED] == 1


def collect_selftest_rejections():
    """Load every extended selftest on every profile, both sanitize
    modes, and collect each rejection's classified message."""
    rejections = []
    for profile_name, profile in PROFILES.items():
        for sanitize in (False, True):
            for selftest in all_selftests_extended():
                kernel = Kernel(profile())
                try:
                    prog = selftest.build(kernel)
                    kernel.prog_load(prog, sanitize=sanitize)
                except VerifierReject as exc:
                    message = final_message(exc.log) or exc.message
                    rejections.append(
                        (profile_name, selftest.name, message,
                         classify(message))
                    )
                except BpfError as exc:
                    rejections.append(
                        (profile_name, selftest.name, exc.message,
                         classify(exc.message))
                    )
    return rejections


class TestSelftestCorpusCoverage:
    def test_no_unclassified_rejections(self):
        rejections = collect_selftest_rejections()
        assert rejections, "expected the corpus to produce rejections"
        leaks = [r for r in rejections if r[3] == UNCLASSIFIED]
        assert not leaks, (
            "UNCLASSIFIED rejection messages leaked from the seed "
            f"corpus: {[(name, msg) for _, name, msg, _ in leaks]}"
        )

    def test_rejections_span_multiple_reasons(self):
        codes = {r[3] for r in collect_selftest_rejections()}
        assert len(codes) >= 3


class TestCampaignTaxonomy:
    @pytest.mark.parametrize(
        "tool", ["bvf", "bvf-nostructure", "syzkaller", "buzzer"]
    )
    def test_no_unclassified_in_campaign(self, tool):
        config = CampaignConfig(
            tool=tool, kernel_version="bpf-next", budget=150, seed=11
        )
        result = Campaign(config).run()
        assert UNCLASSIFIED not in result.reject_reasons
        assert set(result.reject_reasons) <= set(REASON_CODES)

    def test_reason_totals_match_errno_totals(self):
        config = CampaignConfig(tool="bvf", kernel_version="bpf-next", budget=200,
                                seed=3)
        result = Campaign(config).run()
        assert (sum(result.reject_reasons.values())
                == sum(result.reject_errnos.values()))
