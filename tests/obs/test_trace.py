"""Trace-recorder tests: JSONL shape, null overhead, PhaseClock timing."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs import MetricsRegistry
from repro.obs.trace import (
    NULL_RECORDER,
    RECORD_VERSION,
    JsonlTraceRecorder,
    NullRecorder,
    PhaseClock,
)


def parse_lines(stream: io.StringIO) -> list[dict]:
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestNullRecorder:
    def test_disabled_and_inert(self):
        rec = NullRecorder()
        assert rec.enabled is False
        rec.event("x", a=1)
        with rec.span("y", b=2):
            pass
        rec.close()

    def test_null_span_swallows_nothing(self):
        with pytest.raises(RuntimeError):
            with NULL_RECORDER.span("s"):
                raise RuntimeError("propagates")


class TestJsonlRecorder:
    def test_event_line_shape(self):
        stream = io.StringIO()
        rec = JsonlTraceRecorder(stream)
        rec.event("generator.program", insns=12, origin="bvf")
        (record,) = parse_lines(stream)
        assert record["kind"] == "event"
        assert record["name"] == "generator.program"
        assert record["insns"] == 12
        assert record["ts"] >= 0

    def test_span_records_duration_and_error(self):
        stream = io.StringIO()
        rec = JsonlTraceRecorder(stream)
        with rec.span("ok"):
            pass
        with pytest.raises(ValueError):
            with rec.span("bad"):
                raise ValueError("boom")
        ok, bad = parse_lines(stream)
        assert ok["kind"] == "span" and ok["dur"] >= 0
        assert "error" not in ok
        assert bad["error"] == "ValueError"

    def test_timestamps_monotonic(self):
        stream = io.StringIO()
        rec = JsonlTraceRecorder(stream)
        for i in range(5):
            rec.event("tick", i=i)
        stamps = [r["ts"] for r in parse_lines(stream)]
        assert stamps == sorted(stamps)

    def test_reserved_keys_win_over_attrs(self):
        # An attribute named like a reserved record field must not be
        # able to corrupt the record structure (regression: the oracle
        # once passed kind=<report kind> and corrupted the line).
        stream = io.StringIO()
        rec = JsonlTraceRecorder(stream)
        rec.event("e", kind="report-kind", ts=-123)
        (record,) = parse_lines(stream)
        assert record["kind"] == "event"
        assert record["ts"] >= 0

    def test_keys_sorted(self):
        stream = io.StringIO()
        rec = JsonlTraceRecorder(stream)
        rec.event("e", zebra=1, apple=2)
        line = stream.getvalue().splitlines()[0]
        assert line.index('"apple"') < line.index('"zebra"')

    def test_file_backed(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        rec = JsonlTraceRecorder(str(path))
        rec.event("e")
        rec.close()
        assert json.loads(path.read_text().splitlines()[0])["name"] == "e"

    def test_every_record_carries_schema_version(self):
        stream = io.StringIO()
        rec = JsonlTraceRecorder(stream)
        rec.event("e")
        with rec.span("s"):
            pass
        for record in parse_lines(stream):
            assert record["v"] == RECORD_VERSION

    def test_rotation_caps_file_size(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        rec = JsonlTraceRecorder(str(path), max_bytes=200)
        for i in range(50):
            rec.event("tick", i=i)
        rec.close()
        rotated = tmp_path / "trace.jsonl.1"
        assert rotated.exists()
        assert len(rotated.read_bytes()) < 400
        # The live file picks up where the rotation left off; every
        # line in both files is valid JSON with the schema version.
        for p in (path, rotated):
            for line in p.read_text().splitlines():
                assert json.loads(line)["v"] == RECORD_VERSION

    def test_rotation_replaces_previous_backup(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        rec = JsonlTraceRecorder(str(path), max_bytes=100)
        for i in range(100):
            rec.event("tick", i=i)
        rec.close()
        # Exactly one backup, no .2/.3... accumulation.
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "trace.jsonl", "trace.jsonl.1",
        ]

    def test_stream_backed_never_rotates(self):
        stream = io.StringIO()
        rec = JsonlTraceRecorder(stream, max_bytes=10)
        for i in range(20):
            rec.event("tick", i=i)
        assert len(parse_lines(stream)) == 20

    def test_max_bytes_from_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_MAX_BYTES", "123")
        rec = JsonlTraceRecorder(str(tmp_path / "t.jsonl"))
        assert rec._max_bytes == 123
        rec.close()


class TestPhaseClock:
    def test_accumulates_across_blocks(self):
        clock = PhaseClock()
        with clock.phase("verify"):
            pass
        with clock.phase("verify"):
            pass
        with clock.phase("generate"):
            pass
        assert clock.seconds["verify"] >= 0
        assert set(clock.seconds) == {"verify", "generate"}

    def test_counts_exactly_once_on_exception(self):
        # Regression guard for the verify-timer triple-count: a phase
        # that exits via an exception must be charged exactly once.
        from collections import Counter

        clock = PhaseClock()
        marks = []

        class Spy(Counter):
            def __setitem__(self, key, value):
                marks.append(key)
                super().__setitem__(key, value)

        clock.seconds = Spy()
        with pytest.raises(RuntimeError):
            with clock.phase("verify"):
                raise RuntimeError("rejected")
        assert marks == ["verify"]

    def test_feeds_metrics_and_recorder(self):
        stream = io.StringIO()
        reg = MetricsRegistry()
        clock = PhaseClock(metrics=reg, recorder=JsonlTraceRecorder(stream))
        with clock.phase("execute", run=3):
            pass
        snap = reg.snapshot()
        assert snap["wall"]["histograms"]["phase.execute.seconds"]["count"] == 1
        (record,) = parse_lines(stream)
        assert record["name"] == "phase.execute"
        assert record["run"] == 3
        assert record["dur"] >= 0
