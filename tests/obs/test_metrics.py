"""Metrics-registry tests: determinism, merge semantics, segregation."""

from __future__ import annotations

import pytest

from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    MetricsRegistry,
    NullMetrics,
    histogram_quantile,
    merge_snapshots,
    strip_wall_fields,
)


def registry_with(counters=(), gauges=(), observations=(), wall=()):
    reg = MetricsRegistry()
    for name, n in counters:
        reg.counter(name, n)
    for name, v in gauges:
        reg.gauge_max(name, v)
    for name, v in observations:
        reg.observe(name, v)
    for name, v in wall:
        reg.wall(name, v)
    return reg


class TestRegistry:
    def test_counters_accumulate(self):
        reg = registry_with(counters=[("a", 1), ("a", 2), ("b", 5)])
        snap = reg.snapshot()
        assert snap["counters"] == {"a": 3, "b": 5}

    def test_gauge_keeps_max(self):
        reg = registry_with(gauges=[("g", 3.0), ("g", 7.0), ("g", 5.0)])
        assert reg.snapshot()["gauges"] == {"g": 7.0}

    def test_histogram_buckets(self):
        reg = registry_with(observations=[("h", 1), ("h", 3), ("h", 10**9)])
        hist = reg.snapshot()["histograms"]["h"]
        assert hist["count"] == 3
        assert hist["sum"] == 4 + 10**9
        # 1 lands in the <=1 bucket, 3 in <=4, the huge value in +inf.
        assert hist["counts"][0] == 1
        assert hist["counts"][-1] == 1
        assert sum(hist["counts"]) == 3

    def test_wall_is_segregated(self):
        reg = registry_with(counters=[("c", 1)], wall=[("w", 0.5)])
        reg.observe_time("t", 0.01)
        snap = reg.snapshot()
        assert snap["wall"]["sums"] == {"w": 0.5}
        assert snap["wall"]["histograms"]["t"]["count"] == 1
        assert snap["wall"]["histograms"]["t"]["bounds"] == list(
            DEFAULT_TIME_BUCKETS
        )
        stripped = strip_wall_fields(snap)
        assert "wall" not in stripped
        assert stripped["counters"] == {"c": 1}

    def test_snapshot_keys_sorted(self):
        reg = registry_with(counters=[("z", 1), ("a", 1), ("m", 1)])
        assert list(reg.snapshot()["counters"]) == ["a", "m", "z"]

    def test_null_metrics_is_inert(self):
        null = NullMetrics()
        null.counter("x")
        null.gauge_max("g", 1)
        null.observe("h", 2)
        null.wall("w", 0.1)
        null.observe_time("t", 0.1)
        snap = null.snapshot()
        assert snap["counters"] == {} and snap["wall"]["sums"] == {}


class TestMerge:
    def test_counters_sum_gauges_max(self):
        a = registry_with(counters=[("c", 2)], gauges=[("g", 5.0)]).snapshot()
        b = registry_with(counters=[("c", 3)], gauges=[("g", 9.0)]).snapshot()
        merged = merge_snapshots([a, b])
        assert merged["counters"] == {"c": 5}
        assert merged["gauges"] == {"g": 9.0}

    def test_histograms_sum_per_bucket(self):
        a = registry_with(observations=[("h", 1), ("h", 2)]).snapshot()
        b = registry_with(observations=[("h", 2), ("h", 100)]).snapshot()
        merged = merge_snapshots([a, b])
        hist = merged["histograms"]["h"]
        assert hist["count"] == 4
        assert hist["sum"] == 105
        assert sum(hist["counts"]) == 4

    def test_merge_order_independent(self):
        snaps = [
            registry_with(counters=[("c", i)], gauges=[("g", float(i))],
                          observations=[("h", i)]).snapshot()
            for i in range(1, 5)
        ]
        forward = merge_snapshots(snaps)
        backward = merge_snapshots(list(reversed(snaps)))
        assert forward == backward

    def test_bucket_mismatch_rejected(self):
        a = MetricsRegistry()
        a.observe("h", 1, buckets=(1, 2, 3))
        b = MetricsRegistry()
        b.observe("h", 1, buckets=(10, 20))
        with pytest.raises(ValueError, match="bucket boundaries differ"):
            merge_snapshots([a.snapshot(), b.snapshot()])

    def test_wall_merges_but_stays_segregated(self):
        a = registry_with(wall=[("w", 1.0)]).snapshot()
        b = registry_with(wall=[("w", 2.5)]).snapshot()
        merged = merge_snapshots([a, b])
        assert merged["wall"]["sums"] == {"w": 3.5}
        assert strip_wall_fields(merged) == strip_wall_fields(
            merge_snapshots([b, a])
        )


class TestQuantile:
    def test_median_of_uniform(self):
        reg = MetricsRegistry()
        for v in (1, 2, 3, 4):
            reg.observe("h", v)
        hist = reg.snapshot()["histograms"]["h"]
        assert histogram_quantile(hist, 0.5) == 2

    def test_empty(self):
        reg = MetricsRegistry()
        reg.observe("h", 1)
        hist = dict(reg.snapshot()["histograms"]["h"], count=0)
        assert histogram_quantile(hist, 0.5) == 0.0
