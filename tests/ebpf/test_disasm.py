"""Disassembler output format tests."""

from __future__ import annotations

from repro.ebpf import asm
from repro.ebpf.disasm import format_insn, format_program
from repro.ebpf.opcodes import AluOp, AtomicOp, JmpOp, Reg, Size


class TestFormatInsn:
    def test_alu_imm(self):
        assert format_insn(asm.alu64_imm(AluOp.ADD, Reg.R2, -8)) == "r2 += -8"

    def test_alu_reg_32(self):
        assert format_insn(asm.alu32_reg(AluOp.XOR, Reg.R1, Reg.R2)) == "w1 ^= w2"

    def test_mov(self):
        assert format_insn(asm.mov64_reg(Reg.R6, Reg.R1)) == "r6 = r1"

    def test_neg(self):
        assert format_insn(asm.neg64(Reg.R3)) == "r3 = -r3"

    def test_load(self):
        text = format_insn(asm.ldx_mem(Size.DW, Reg.R0, Reg.R10, -8))
        assert text == "r0 = *(u64 *)(r10 -8)"

    def test_store_imm(self):
        text = format_insn(asm.st_mem(Size.W, Reg.R1, 4, 7))
        assert text == "*(u32 *)(r1 +4) = 7"

    def test_atomic(self):
        text = format_insn(
            asm.atomic_op(Size.DW, AtomicOp.ADD, Reg.R1, Reg.R2, 0)
        )
        assert "lock add" in text

    def test_cond_jump(self):
        text = format_insn(asm.jmp_imm(JmpOp.JSGT, Reg.R3, -1, 5))
        assert text == "if r3 s> -1 goto +5"

    def test_exit_and_ja(self):
        assert format_insn(asm.exit_insn()) == "exit"
        assert format_insn(asm.ja(-4)) == "goto -4"

    def test_calls(self):
        assert format_insn(asm.call_helper(1)) == "call helper#1"
        assert format_insn(asm.call_kfunc(9001)) == "call kfunc#9001"
        assert format_insn(asm.call_subprog(3)) == "call pc+3"

    def test_map_fd_load(self):
        first, _ = asm.ld_map_fd(Reg.R1, 5)
        assert format_insn(first) == "r1 = map_fd[5] ll"

    def test_ax_register(self):
        assert format_insn(asm.mov64_reg(Reg.AX, Reg.R1)) == "ax = r1"


class TestFormatProgram:
    def test_numbering_skips_ld_imm64_filler(self):
        prog = [
            *asm.ld_imm64(Reg.R1, 0x1234),
            asm.mov64_imm(Reg.R0, 0),
            asm.exit_insn(),
        ]
        lines = format_program(prog).splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("   0:")
        assert lines[1].startswith("   2:")
        assert lines[2].startswith("   3:")
