"""Program-type and context-descriptor tests."""

from __future__ import annotations

import pytest

from repro.ebpf.program import (
    BpfProgram,
    CONTEXTS,
    ContextDescriptor,
    CtxField,
    PACKET_ACCESS_TYPES,
    ProgType,
)


class TestDescriptors:
    def test_every_prog_type_has_a_context(self):
        for prog_type in ProgType:
            assert prog_type in CONTEXTS

    def test_skb_field_layout(self):
        skb = CONTEXTS[ProgType.SOCKET_FILTER]
        assert skb.name == "__sk_buff"
        data = skb.field_covering(76, 4)
        assert data.special == "pkt_data"
        end = skb.field_covering(80, 4)
        assert end.special == "pkt_end"

    def test_xdp_is_small_and_special(self):
        xdp = CONTEXTS[ProgType.XDP]
        assert xdp.size == 24
        specials = {f.special for f in xdp.fields if f.special}
        assert specials == {"pkt_data", "pkt_end", "pkt_meta"}

    def test_packet_types(self):
        assert ProgType.XDP in PACKET_ACCESS_TYPES
        assert ProgType.KPROBE not in PACKET_ACCESS_TYPES


class TestAccessRules:
    def _skb(self) -> ContextDescriptor:
        return CONTEXTS[ProgType.SOCKET_FILTER]

    def test_scalar_field_narrow_read_ok(self):
        ok, field, _ = self._skb().check_access(0, 2, is_write=False)
        assert ok and field.name == "len"

    def test_special_field_requires_exact_size(self):
        ok, _, reason = self._skb().check_access(76, 2, is_write=False)
        assert not ok and "exact-size" in reason
        ok, _, _ = self._skb().check_access(76, 4, is_write=False)
        assert ok

    def test_special_field_never_writable(self):
        ok, _, reason = self._skb().check_access(76, 4, is_write=True)
        assert not ok and "read-only" in reason

    def test_write_rules(self):
        ok, _, _ = self._skb().check_access(8, 4, is_write=True)  # mark
        assert ok
        ok, _, reason = self._skb().check_access(0, 4, is_write=True)  # len
        assert not ok and "read-only" in reason

    def test_hole_access_rejected(self):
        ok, field, reason = self._skb().check_access(24, 4, is_write=False)
        assert not ok and field is None

    def test_out_of_range(self):
        ok, _, reason = self._skb().check_access(400, 4, is_write=False)
        assert not ok and "out of range" in reason
        ok, _, _ = self._skb().check_access(-4, 4, is_write=False)
        assert not ok

    def test_raw_readable_context(self):
        tp = CONTEXTS[ProgType.TRACEPOINT]
        ok, field, _ = tp.check_access(40, 8, is_write=False)
        assert ok and field is None
        ok, _, _ = tp.check_access(40, 8, is_write=True)
        assert not ok

    def test_straddling_field_boundary_rejected(self):
        # 4-byte read at offset 2 straddles len and pkt_type.
        ok, field, _ = self._skb().check_access(2, 4, is_write=False)
        assert not ok


class TestBpfProgram:
    def test_defaults(self):
        prog = BpfProgram(insns=[])
        assert prog.prog_type == ProgType.SOCKET_FILTER
        assert prog.license == "GPL"
        assert prog.offload_dev is None
        assert len(prog) == 0

    def test_context_property(self):
        prog = BpfProgram(insns=[], prog_type=ProgType.KPROBE)
        assert prog.context.name == "pt_regs"
