"""Instruction representation and wire-format codec tests."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import EncodingError
from repro.ebpf import asm
from repro.ebpf.insn import Insn, decode_program, encode_program, ld_imm64_pair
from repro.ebpf.opcodes import (
    AluOp,
    InsnClass,
    JmpOp,
    Mode,
    PseudoCall,
    PseudoSrc,
    Reg,
    Size,
    Src,
)


class TestClassification:
    def test_alu64_class(self):
        insn = asm.alu64_imm(AluOp.ADD, Reg.R1, 5)
        assert insn.insn_class == InsnClass.ALU64
        assert insn.is_alu()
        assert insn.alu_op == AluOp.ADD
        assert insn.src_bit == Src.K

    def test_alu32_reg_source(self):
        insn = asm.alu32_reg(AluOp.XOR, Reg.R2, Reg.R3)
        assert insn.insn_class == InsnClass.ALU
        assert insn.src_bit == Src.X
        assert insn.src == Reg.R3

    def test_exit(self):
        insn = asm.exit_insn()
        assert insn.is_exit()
        assert not insn.is_call()
        assert not insn.is_cond_jmp()

    def test_helper_call(self):
        insn = asm.call_helper(7)
        assert insn.is_call()
        assert insn.is_helper_call()
        assert not insn.is_kfunc_call()
        assert not insn.is_pseudo_call()
        assert insn.imm == 7

    def test_kfunc_call(self):
        insn = asm.call_kfunc(9001)
        assert insn.is_kfunc_call()
        assert insn.src == PseudoCall.KFUNC

    def test_subprog_call(self):
        insn = asm.call_subprog(4)
        assert insn.is_pseudo_call()
        assert insn.imm == 4

    def test_cond_jmp(self):
        insn = asm.jmp_imm(JmpOp.JGT, Reg.R1, 10, 3)
        assert insn.is_cond_jmp()
        assert not insn.is_uncond_jmp()

    def test_ja(self):
        insn = asm.ja(-2)
        assert insn.is_uncond_jmp()
        assert not insn.is_cond_jmp()
        assert insn.off == -2

    def test_memory_load(self):
        insn = asm.ldx_mem(Size.W, Reg.R0, Reg.R1, 8)
        assert insn.is_memory_load()
        assert not insn.is_memory_store()
        assert insn.size == Size.W
        assert insn.mode == Mode.MEM

    def test_memory_store_imm_and_reg(self):
        st_insn = asm.st_mem(Size.B, Reg.R10, -1, 7)
        stx_insn = asm.stx_mem(Size.DW, Reg.R10, Reg.R1, -8)
        assert st_insn.is_memory_store()
        assert stx_insn.is_memory_store()
        assert not st_insn.is_memory_load()

    def test_atomic(self):
        from repro.ebpf.opcodes import AtomicOp

        insn = asm.atomic_op(Size.DW, AtomicOp.ADD, Reg.R1, Reg.R2, 0)
        assert insn.is_atomic()
        assert not insn.is_memory_store()  # ATOMIC mode, not MEM

    def test_ld_imm64_slots(self):
        first, second = asm.ld_imm64(Reg.R1, 0xDEADBEEF12345678)
        assert first.is_ld_imm64()
        assert second.is_filler()
        assert first.imm64 == 0xDEADBEEF12345678

    def test_filler_is_not_ld_imm64(self):
        assert not Insn(opcode=0).is_ld_imm64()


class TestCodec:
    def test_simple_roundtrip(self):
        prog = [
            asm.mov64_imm(Reg.R0, -1),
            asm.alu64_imm(AluOp.ADD, Reg.R0, 0x7FFFFFFF),
            asm.exit_insn(),
        ]
        assert decode_program(encode_program(prog)) == prog

    def test_ld_imm64_roundtrip(self):
        prog = [
            *asm.ld_imm64(Reg.R3, 0xFFFFFFFFFFFFFFFF),
            *asm.ld_map_fd(Reg.R1, 42),
            asm.exit_insn(),
        ]
        decoded = decode_program(encode_program(prog))
        assert decoded[0].imm64 == 0xFFFFFFFFFFFFFFFF
        assert decoded[2].imm64 == 42
        assert decoded[2].pseudo_src() == PseudoSrc.MAP_FD

    def test_negative_offsets_and_imms(self):
        prog = [
            asm.ldx_mem(Size.DW, Reg.R0, Reg.R10, -512),
            asm.jmp_imm(JmpOp.JSLT, Reg.R0, -1, -3),
            asm.exit_insn(),
        ]
        assert decode_program(encode_program(prog)) == prog

    def test_truncated_stream_rejected(self):
        data = encode_program([asm.exit_insn()])
        with pytest.raises(EncodingError):
            decode_program(data[:4])

    def test_ld_imm64_missing_second_slot(self):
        first, _ = asm.ld_imm64(Reg.R1, 1)
        with pytest.raises(EncodingError):
            decode_program(first.encode())

    def test_ld_imm64_bad_second_slot(self):
        first, _ = asm.ld_imm64(Reg.R1, 1)
        bad_second = Insn(opcode=0, dst=1, imm=0)
        with pytest.raises(EncodingError):
            decode_program(first.encode() + bad_second.encode())

    def test_register_field_range_checked(self):
        with pytest.raises(EncodingError):
            Insn(opcode=0x07, dst=16).encode()

    @given(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=10),
        st.integers(min_value=0, max_value=10),
        st.integers(min_value=-(1 << 15), max_value=(1 << 15) - 1),
        st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1),
    )
    def test_single_insn_roundtrip(self, opcode, dst, src, off, imm):
        insn = Insn(opcode=opcode, dst=dst, src=src, off=off, imm=imm)
        if insn.is_ld_imm64() or insn.is_filler():
            return  # multi-slot handled separately
        (decoded,) = decode_program(insn.encode())
        assert decoded == insn

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_ld_imm64_value_roundtrip(self, value):
        prog = [*asm.ld_imm64(Reg.R5, value), asm.exit_insn()]
        decoded = decode_program(encode_program(prog))
        assert decoded[0].imm64 == value


class TestLdImm64Pair:
    def test_pair_halves(self):
        head = Insn(opcode=InsnClass.LD | Size.DW | Mode.IMM, dst=1)
        first, second = ld_imm64_pair(head, 0x1122334455667788)
        assert first.imm == 0x55667788
        assert second.imm == 0x11223344

    def test_pair_negative_half(self):
        head = Insn(opcode=InsnClass.LD | Size.DW | Mode.IMM, dst=1)
        first, second = ld_imm64_pair(head, 0xFFFFFFFF_FFFFFFFF)
        assert first.imm == -1
        assert second.imm == -1
        assert first.imm64 == 0xFFFFFFFF_FFFFFFFF
