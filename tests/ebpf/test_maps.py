"""Map data-structure tests."""

from __future__ import annotations

import errno

import pytest
from hypothesis import given, strategies as st

from repro.errors import KasanReport, MapError
from repro.kernel.config import PROFILES, Flaw
from repro.kernel.kasan import KernelMemory
from repro.kernel.lockdep import Lockdep
from repro.ebpf.maps import (
    ArrayMap,
    HashMap,
    LruHashMap,
    MapFlags,
    MapType,
    QueueMap,
    RingbufMap,
    StackMap,
    create_map,
)


def mem():
    return KernelMemory()


class TestFactory:
    def test_create_each_type(self):
        m = mem()
        assert isinstance(create_map(m, MapType.HASH, 8, 8, 4), HashMap)
        assert isinstance(create_map(m, MapType.ARRAY, 4, 8, 4), ArrayMap)
        assert isinstance(create_map(m, MapType.LRU_HASH, 8, 8, 4), LruHashMap)
        assert isinstance(create_map(m, MapType.QUEUE, 0, 8, 4), QueueMap)
        assert isinstance(create_map(m, MapType.STACK, 0, 8, 4), StackMap)
        assert isinstance(create_map(m, MapType.RINGBUF, 0, 0, 4096), RingbufMap)

    def test_unknown_type_einval(self):
        with pytest.raises(MapError) as exc:
            create_map(mem(), 999, 4, 4, 4)
        assert exc.value.errno == errno.EINVAL

    @pytest.mark.parametrize(
        "key,value,entries",
        [(0, 8, 4), (-1, 8, 4), (8, 0, 4), (8, 8, 0), (1024, 8, 4)],
    )
    def test_bad_params_einval(self, key, value, entries):
        with pytest.raises(MapError):
            create_map(mem(), MapType.HASH, key, value, entries)


class TestHashMap:
    def test_update_lookup_delete(self):
        m = create_map(mem(), MapType.HASH, 8, 16, 4)
        key = b"k" * 8
        m.update(key, b"v" * 16)
        assert m.read_value(key) == b"v" * 16
        m.delete(key)
        assert m.lookup(key) is None

    def test_lookup_returns_kernel_address(self):
        memory = mem()
        m = create_map(memory, MapType.HASH, 8, 8, 4)
        m.update(b"A" * 8, b"B" * 8)
        addr = m.lookup(b"A" * 8)
        assert memory.checked_read_bytes(addr, 8) == b"B" * 8

    def test_flags(self):
        m = create_map(mem(), MapType.HASH, 8, 8, 4)
        key = bytes(8)
        with pytest.raises(MapError) as exc:
            m.update(key, bytes(8), MapFlags.EXIST)
        assert exc.value.errno == errno.ENOENT
        m.update(key, bytes(8), MapFlags.NOEXIST)
        with pytest.raises(MapError) as exc:
            m.update(key, bytes(8), MapFlags.NOEXIST)
        assert exc.value.errno == errno.EEXIST

    def test_capacity(self):
        m = create_map(mem(), MapType.HASH, 8, 8, 2)
        m.update(b"a" * 8, bytes(8))
        m.update(b"b" * 8, bytes(8))
        with pytest.raises(MapError) as exc:
            m.update(b"c" * 8, bytes(8))
        assert exc.value.errno == errno.E2BIG

    def test_wrong_key_size(self):
        m = create_map(mem(), MapType.HASH, 8, 8, 4)
        with pytest.raises(MapError):
            m.lookup(b"short")

    def test_get_next_key_iteration(self):
        m = create_map(mem(), MapType.HASH, 8, 8, 8)
        keys = {bytes([i]) * 8 for i in range(5)}
        for k in keys:
            m.update(k, bytes(8))
        seen = set()
        cursor = None
        for _ in range(10):
            try:
                cursor = m.get_next_key(cursor)
            except MapError:
                break
            seen.add(cursor)
        assert seen == keys

    def test_empty_iteration_enoent(self):
        m = create_map(mem(), MapType.HASH, 8, 8, 4)
        with pytest.raises(MapError) as exc:
            m.get_next_key(None)
        assert exc.value.errno == errno.ENOENT

    def test_delete_frees_element(self):
        memory = mem()
        m = create_map(memory, MapType.HASH, 8, 8, 4)
        m.update(b"x" * 8, bytes(8))
        addr = m.lookup(b"x" * 8)
        m.delete(b"x" * 8)
        with pytest.raises(KasanReport):
            memory.checked_read(addr, 8)

    @given(st.dictionaries(st.binary(min_size=8, max_size=8),
                           st.binary(min_size=8, max_size=8), max_size=16))
    def test_model_equivalence(self, model):
        m = create_map(mem(), MapType.HASH, 8, 8, 32)
        for k, v in model.items():
            m.update(k, v)
        for k, v in model.items():
            assert m.read_value(k) == v


class TestBucketBug:
    def _last_bucket_key(self, m: HashMap) -> bytes:
        for i in range(100000):
            key = i.to_bytes(8, "little")
            if m._bucket_of(key) == m.n_buckets - 1:
                return key
        raise AssertionError("no key hashed to the last bucket")

    def test_flawed_iteration_oob(self):
        memory = mem()
        m = create_map(
            memory, MapType.HASH, 8, 8, 8,
            lockdep=Lockdep(), config=PROFILES["bpf-next"](),
        )
        key = self._last_bucket_key(m)
        m.update(key, bytes(8))
        with pytest.raises(KasanReport):
            m.get_next_key(key)

    def test_fixed_iteration_clean(self):
        memory = mem()
        m = create_map(
            memory, MapType.HASH, 8, 8, 8,
            lockdep=Lockdep(), config=PROFILES["patched"](),
        )
        key = self._last_bucket_key(m)
        m.update(key, bytes(8))
        with pytest.raises(MapError):  # plain end-of-iteration
            m.get_next_key(key)


class TestArrayMap:
    def test_all_indices_exist(self):
        m = create_map(mem(), MapType.ARRAY, 4, 8, 4)
        for i in range(4):
            assert m.lookup(i.to_bytes(4, "little")) is not None
        assert m.lookup((4).to_bytes(4, "little")) is None

    def test_values_contiguous(self):
        m = create_map(mem(), MapType.ARRAY, 4, 8, 4)
        a0 = m.lookup((0).to_bytes(4, "little"))
        a1 = m.lookup((1).to_bytes(4, "little"))
        assert a1 - a0 == 8

    def test_update_out_of_range(self):
        m = create_map(mem(), MapType.ARRAY, 4, 8, 4)
        with pytest.raises(MapError) as exc:
            m.update((9).to_bytes(4, "little"), bytes(8))
        assert exc.value.errno == errno.E2BIG

    def test_delete_rejected(self):
        m = create_map(mem(), MapType.ARRAY, 4, 8, 4)
        with pytest.raises(MapError):
            m.delete(bytes(4))

    def test_key_size_must_be_4(self):
        with pytest.raises(MapError):
            create_map(mem(), MapType.ARRAY, 8, 8, 4)

    def test_noexist_rejected(self):
        m = create_map(mem(), MapType.ARRAY, 4, 8, 4)
        with pytest.raises(MapError) as exc:
            m.update(bytes(4), bytes(8), MapFlags.NOEXIST)
        assert exc.value.errno == errno.EEXIST


class TestLru:
    def test_eviction_instead_of_full(self):
        m = create_map(mem(), MapType.LRU_HASH, 8, 8, 2)
        for i in range(5):
            m.update(bytes([i]) * 8, bytes(8))
        assert len(m._elems) == 2


class TestQueueStack:
    def test_queue_fifo(self):
        m = create_map(mem(), MapType.QUEUE, 0, 8, 4)
        m.push(b"11111111")
        m.push(b"22222222")
        assert m.pop() == b"11111111"
        assert m.pop() == b"22222222"

    def test_stack_lifo(self):
        m = create_map(mem(), MapType.STACK, 0, 8, 4)
        m.push(b"11111111")
        m.push(b"22222222")
        assert m.pop() == b"22222222"

    def test_peek_does_not_consume(self):
        m = create_map(mem(), MapType.QUEUE, 0, 8, 4)
        m.push(b"11111111")
        assert m.peek() == b"11111111"
        assert m.pop() == b"11111111"

    def test_empty_pop(self):
        m = create_map(mem(), MapType.QUEUE, 0, 8, 4)
        with pytest.raises(MapError) as exc:
            m.pop()
        assert exc.value.errno == errno.ENOENT

    def test_full_push(self):
        m = create_map(mem(), MapType.QUEUE, 0, 8, 1)
        m.push(bytes(8))
        with pytest.raises(MapError) as exc:
            m.push(bytes(8))
        assert exc.value.errno == errno.E2BIG

    def test_keyed_ops_rejected(self):
        m = create_map(mem(), MapType.QUEUE, 0, 8, 4)
        with pytest.raises(MapError):
            m.lookup(b"")
        with pytest.raises(MapError):
            m.get_next_key(None)


class TestRingbuf:
    def test_output_consume(self):
        m = create_map(mem(), MapType.RINGBUF, 0, 0, 64)
        m.output(b"hello")
        assert m.consume(5) == b"hello"

    def test_wraparound(self):
        m = create_map(mem(), MapType.RINGBUF, 0, 0, 16)
        m.output(b"A" * 12)
        assert m.consume(12) == b"A" * 12
        m.output(b"B" * 12)  # wraps
        assert m.consume(12) == b"B" * 12

    def test_full_eagain(self):
        m = create_map(mem(), MapType.RINGBUF, 0, 0, 16)
        m.output(b"x" * 16)
        with pytest.raises(MapError) as exc:
            m.output(b"y")
        assert exc.value.errno == errno.EAGAIN

    def test_power_of_two_required(self):
        with pytest.raises(MapError):
            create_map(mem(), MapType.RINGBUF, 0, 0, 100)
