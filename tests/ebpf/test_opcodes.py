"""Opcode table tests."""

from __future__ import annotations

import pytest

from repro.ebpf.opcodes import (
    AluOp,
    InsnClass,
    JmpOp,
    Mode,
    Size,
    Src,
    SIZE_BYTES,
    BYTES_TO_SIZE,
    insn_class,
    is_alu_class,
    is_jmp_class,
    is_ldst_class,
    opcode,
)


class TestEncoding:
    def test_class_bits(self):
        assert insn_class(0x07) == InsnClass.ALU64
        assert insn_class(0x05) == InsnClass.JMP
        assert insn_class(0x61) == InsnClass.LDX

    def test_opcode_compose(self):
        op = opcode(InsnClass.ALU64, AluOp.ADD, Src.X)
        assert insn_class(op) == InsnClass.ALU64
        assert op & 0xF0 == AluOp.ADD
        assert op & 0x08 == Src.X

    def test_classifiers(self):
        assert is_alu_class(InsnClass.ALU)
        assert is_alu_class(InsnClass.ALU64)
        assert not is_alu_class(InsnClass.JMP)
        assert is_jmp_class(InsnClass.JMP32)
        assert is_ldst_class(InsnClass.STX)
        assert not is_ldst_class(InsnClass.ALU)

    def test_size_tables_inverse(self):
        for size, nbytes in SIZE_BYTES.items():
            assert BYTES_TO_SIZE[nbytes] == size

    def test_known_kernel_values(self):
        # Spot-check against the UAPI constants.
        assert int(InsnClass.LDX) == 0x01
        assert int(Size.DW) == 0x18
        assert int(Mode.MEM) == 0x60
        assert int(Mode.ATOMIC) == 0xC0
        assert int(AluOp.MOV) == 0xB0
        assert int(JmpOp.CALL) == 0x80
        assert int(JmpOp.EXIT) == 0x90

    def test_every_high_nibble_maps_to_alu_op(self):
        for nibble in range(0, 0x100, 0x10):
            AluOp(nibble)  # placeholders make this total

    def test_every_high_nibble_maps_to_jmp_op(self):
        for nibble in range(0, 0x100, 0x10):
            JmpOp(nibble)
