"""BTF model tests."""

from __future__ import annotations

from repro.kernel.kasan import KernelMemory
from repro.ebpf.btf import BtfRegistry, TASK_STRUCT


class TestTypes:
    def test_task_struct_shape(self):
        assert TASK_STRUCT.size == 128
        pid = TASK_STRUCT.field_at(32)
        assert pid is not None and pid.name == "pid"

    def test_field_at_boundaries(self):
        assert TASK_STRUCT.field_at(127) is not None
        assert TASK_STRUCT.field_at(128) is None
        assert TASK_STRUCT.field_at(-1) is None

    def test_pointer_fields(self):
        parent = TASK_STRUCT.field_at(40)
        assert parent.points_to == "task_struct"


class TestRegistry:
    def test_bootstrap_objects(self):
        reg = BtfRegistry(KernelMemory())
        task = reg.object(reg.current_task_id)
        assert task is not None
        assert task.type.name == "task_struct"
        assert task.address != 0
        assert not task.maybe_absent

    def test_absent_ksym_is_null(self):
        reg = BtfRegistry(KernelMemory())
        absent = reg.object(reg.absent_ksym_id)
        assert absent.maybe_absent
        assert absent.address == 0

    def test_current_task_fields_initialised(self):
        mem = KernelMemory()
        reg = BtfRegistry(mem)
        task = reg.object(reg.current_task_id)
        assert mem.checked_read(task.address + 32, 4) == 4242
        comm = mem.checked_read_bytes(task.address + 72, 10)
        assert comm == b"repro_task"

    def test_instantiate_new_object(self):
        reg = BtfRegistry(KernelMemory())
        btf_id = reg.instantiate("file")
        obj = reg.object(btf_id)
        assert obj.type.name == "file"
        assert obj.address != 0

    def test_loadable_ids(self):
        reg = BtfRegistry(KernelMemory())
        ids = reg.loadable_ids()
        assert reg.current_task_id in ids
        assert reg.absent_ksym_id in ids

    def test_unknown_id(self):
        reg = BtfRegistry(KernelMemory())
        assert reg.object(9999) is None
