"""Assembler-builder field-encoding tests."""

from __future__ import annotations

import pytest

from repro.ebpf import asm
from repro.ebpf.opcodes import (
    AluOp,
    AtomicOp,
    InsnClass,
    JmpOp,
    Mode,
    PseudoCall,
    PseudoSrc,
    Reg,
    Size,
    Src,
)


class TestAluBuilders:
    @pytest.mark.parametrize("op", list(AluOp)[:14])
    def test_alu64_imm_fields(self, op):
        if op.name.startswith("UNDEF"):
            return
        insn = asm.alu64_imm(op, Reg.R3, 9)
        assert insn.insn_class == InsnClass.ALU64
        assert insn.alu_op == op
        assert insn.src_bit == Src.K
        assert insn.dst == Reg.R3
        assert insn.imm == 9

    def test_mov_aliases(self):
        assert asm.mov64_imm(Reg.R1, 5) == asm.alu64_imm(AluOp.MOV, Reg.R1, 5)
        assert asm.mov32_reg(Reg.R1, Reg.R2) == asm.alu32_reg(
            AluOp.MOV, Reg.R1, Reg.R2
        )

    def test_endian_variants(self):
        be = asm.endian(Reg.R1, 32, to_big=True)
        le = asm.endian(Reg.R1, 32, to_big=False)
        assert be.src_bit == Src.X
        assert le.src_bit == Src.K
        assert be.imm == le.imm == 32


class TestMemoryBuilders:
    def test_ldx_fields(self):
        insn = asm.ldx_mem(Size.H, Reg.R2, Reg.R3, -6)
        assert insn.insn_class == InsnClass.LDX
        assert insn.size == Size.H
        assert insn.mode == Mode.MEM
        assert (insn.dst, insn.src, insn.off) == (Reg.R2, Reg.R3, -6)

    def test_ldx_memsx(self):
        insn = asm.ldx_memsx(Size.B, Reg.R1, Reg.R2, 0)
        assert insn.mode == Mode.MEMSX

    def test_st_vs_stx(self):
        st = asm.st_mem(Size.W, Reg.R1, 4, 77)
        stx = asm.stx_mem(Size.W, Reg.R1, Reg.R2, 4)
        assert st.insn_class == InsnClass.ST and st.imm == 77
        assert stx.insn_class == InsnClass.STX and stx.src == Reg.R2

    def test_atomic_builder(self):
        insn = asm.atomic_op(Size.DW, AtomicOp.CMPXCHG, Reg.R1, Reg.R2, -8)
        assert insn.is_atomic()
        assert insn.imm == int(AtomicOp.CMPXCHG)


class TestPseudoLoads:
    def test_ld_map_fd_marks_pseudo(self):
        first, second = asm.ld_map_fd(Reg.R1, 42)
        assert first.pseudo_src() == PseudoSrc.MAP_FD
        assert first.imm64 == 42
        assert second.is_filler()

    def test_ld_map_value_packs_offset(self):
        first, _ = asm.ld_map_value(Reg.R1, 5, 24)
        assert first.pseudo_src() == PseudoSrc.MAP_VALUE
        assert first.imm64 & 0xFFFFFFFF == 5
        assert first.imm64 >> 32 == 24

    def test_ld_btf_id(self):
        first, _ = asm.ld_btf_id(Reg.R2, 3)
        assert first.pseudo_src() == PseudoSrc.BTF_ID
        assert first.imm64 == 3


class TestJumpBuilders:
    def test_jmp32(self):
        insn = asm.jmp32_imm(JmpOp.JLT, Reg.R1, 10, 2)
        assert insn.insn_class == InsnClass.JMP32
        assert insn.is_cond_jmp()

    def test_call_kinds(self):
        helper = asm.call_helper(1)
        kfunc = asm.call_kfunc(9001)
        sub = asm.call_subprog(5)
        assert helper.src == PseudoCall.HELPER
        assert kfunc.src == PseudoCall.KFUNC
        assert sub.src == PseudoCall.CALL
        assert sub.imm == 5
