"""Helper registry and implementation tests."""

from __future__ import annotations

import errno

import pytest

from repro.errors import KernelPanic, LockdepReport
from repro.kernel.config import PROFILES
from repro.kernel.syscall import Kernel
from repro.ebpf.helpers import ArgType, HelperContext, HelperId, RetType
from repro.ebpf.maps import MapType


def ctx_for(kernel, **kwargs) -> HelperContext:
    return HelperContext(kernel=kernel, prog=None, **kwargs)


class TestRegistry:
    def test_all_helpers_registered(self, patched_kernel):
        ids = patched_kernel.helpers.ids()
        assert int(HelperId.MAP_LOOKUP_ELEM) in ids
        assert int(HelperId.TRACE_PRINTK) in ids
        assert int(HelperId.GET_CURRENT_TASK_BTF) in ids

    def test_version_gating(self, v5_15_kernel):
        ids = v5_15_kernel.helpers.ids()
        # bpf_loop and bpf_snprintf post-date v5.15 in our model.
        assert int(HelperId.LOOP) not in ids
        assert int(HelperId.SNPRINTF) not in ids
        assert int(HelperId.MAP_LOOKUP_ELEM) in ids

    def test_prog_type_filtering(self, patched_kernel):
        socket_ids = patched_kernel.helpers.ids_for_prog_type("socket_filter")
        kprobe_ids = patched_kernel.helpers.ids_for_prog_type("kprobe")
        assert int(HelperId.GET_CURRENT_PID_TGID) not in socket_ids
        assert int(HelperId.GET_CURRENT_PID_TGID) in kprobe_ids

    def test_lock_acquiring_ids(self, patched_kernel):
        locky = patched_kernel.helpers.lock_acquiring_ids()
        assert int(HelperId.TRACE_PRINTK) in locky
        assert int(HelperId.RINGBUF_OUTPUT) in locky
        assert int(HelperId.KTIME_GET_NS) not in locky

    def test_unknown_helper(self, patched_kernel):
        assert patched_kernel.helpers.get(9999) is None


class TestMapHelpers:
    def _setup(self, kernel):
        fd = kernel.map_create(MapType.HASH, 8, 8, 4)
        bpf_map = kernel.map_by_fd(fd)
        map_addr = kernel.map_kobj_addr(bpf_map)
        key_buf = kernel.mem.kmalloc(8, tag="key")
        val_buf = kernel.mem.kmalloc(8, tag="val")
        return bpf_map, map_addr, key_buf, val_buf

    def test_lookup_miss_returns_zero(self, patched_kernel):
        bpf_map, map_addr, key_buf, _ = self._setup(patched_kernel)
        patched_kernel.mem.checked_write(key_buf.start, 8, 1)
        proto = patched_kernel.helpers.get(HelperId.MAP_LOOKUP_ELEM)
        assert proto.impl(ctx_for(patched_kernel), map_addr, key_buf.start) == 0

    def test_update_then_lookup(self, patched_kernel):
        bpf_map, map_addr, key_buf, val_buf = self._setup(patched_kernel)
        mem = patched_kernel.mem
        mem.checked_write(key_buf.start, 8, 5)
        mem.checked_write(val_buf.start, 8, 77)
        update = patched_kernel.helpers.get(HelperId.MAP_UPDATE_ELEM)
        lookup = patched_kernel.helpers.get(HelperId.MAP_LOOKUP_ELEM)
        assert update.impl(
            ctx_for(patched_kernel), map_addr, key_buf.start, val_buf.start, 0
        ) == 0
        addr = lookup.impl(ctx_for(patched_kernel), map_addr, key_buf.start)
        assert addr != 0
        assert mem.checked_read(addr, 8) == 77

    def test_delete_missing_negative_errno(self, patched_kernel):
        bpf_map, map_addr, key_buf, _ = self._setup(patched_kernel)
        patched_kernel.mem.checked_write(key_buf.start, 8, 9)
        delete = patched_kernel.helpers.get(HelperId.MAP_DELETE_ELEM)
        rv = delete.impl(ctx_for(patched_kernel), map_addr, key_buf.start)
        assert rv == -errno.ENOENT


class TestMiscHelpers:
    def test_ktime_monotonic(self, patched_kernel):
        proto = patched_kernel.helpers.get(HelperId.KTIME_GET_NS)
        a = proto.impl(ctx_for(patched_kernel))
        b = proto.impl(ctx_for(patched_kernel))
        assert b > a

    def test_prandom_changes(self, patched_kernel):
        proto = patched_kernel.helpers.get(HelperId.GET_PRANDOM_U32)
        values = {proto.impl(ctx_for(patched_kernel)) for _ in range(8)}
        assert len(values) > 1
        assert all(0 <= v <= 0xFFFFFFFF for v in values)

    def test_get_current_comm(self, patched_kernel):
        buf = patched_kernel.mem.kmalloc(16, tag="comm")
        proto = patched_kernel.helpers.get(HelperId.GET_CURRENT_COMM)
        assert proto.impl(ctx_for(patched_kernel), buf.start, 16) == 0
        data = patched_kernel.mem.checked_read_bytes(buf.start, 16)
        assert data.startswith(b"repro_task")

    def test_get_current_task_address(self, patched_kernel):
        proto = patched_kernel.helpers.get(HelperId.GET_CURRENT_TASK)
        addr = proto.impl(ctx_for(patched_kernel))
        task = patched_kernel.btf.object(patched_kernel.btf.current_task_id)
        assert addr == task.address

    def test_probe_read_bad_address_faults_gracefully(self, patched_kernel):
        buf = patched_kernel.mem.kmalloc(8, tag="dst")
        proto = patched_kernel.helpers.get(HelperId.PROBE_READ_KERNEL)
        rv = proto.impl(ctx_for(patched_kernel), buf.start, 8, 0x41414141)
        assert rv == -errno.EFAULT
        assert patched_kernel.mem.checked_read(buf.start, 8) == 0


class TestSendSignal:
    def test_invalid_signal_einval(self, bpf_next_kernel):
        proto = bpf_next_kernel.helpers.get(HelperId.SEND_SIGNAL)
        assert proto.impl(ctx_for(bpf_next_kernel), 0) == -errno.EINVAL
        assert proto.impl(ctx_for(bpf_next_kernel), 999) == -errno.EINVAL

    def test_normal_context_ok(self, bpf_next_kernel):
        proto = bpf_next_kernel.helpers.get(HelperId.SEND_SIGNAL)
        assert proto.impl(ctx_for(bpf_next_kernel), 9) == 0

    def test_nmi_context_panics(self, bpf_next_kernel):
        proto = bpf_next_kernel.helpers.get(HelperId.SEND_SIGNAL)
        with pytest.raises(KernelPanic):
            proto.impl(ctx_for(bpf_next_kernel, in_nmi=True), 9)


class TestRingbufOutput:
    def _ringbuf(self, kernel):
        fd = kernel.map_create(MapType.RINGBUF, 0, 0, 4096)
        bpf_map = kernel.map_by_fd(fd)
        data = kernel.mem.kmalloc(16, tag="data")
        return kernel.map_kobj_addr(bpf_map), data

    def test_normal_output(self, patched_kernel):
        map_addr, data = self._ringbuf(patched_kernel)
        proto = patched_kernel.helpers.get(HelperId.RINGBUF_OUTPUT)
        rv = proto.impl(ctx_for(patched_kernel), map_addr, data.start, 16, 0)
        assert rv == 0

    def test_irq_misuse_reported_when_flawed(self, bpf_next_kernel):
        map_addr, data = self._ringbuf(bpf_next_kernel)
        proto = bpf_next_kernel.helpers.get(HelperId.RINGBUF_OUTPUT)
        with pytest.raises(LockdepReport):
            proto.impl(
                ctx_for(bpf_next_kernel, in_irq=True), map_addr, data.start, 16, 0
            )

    def test_irq_ok_when_fixed(self, patched_kernel):
        map_addr, data = self._ringbuf(patched_kernel)
        proto = patched_kernel.helpers.get(HelperId.RINGBUF_OUTPUT)
        rv = proto.impl(
            ctx_for(patched_kernel, in_irq=True), map_addr, data.start, 16, 0
        )
        assert rv == 0
