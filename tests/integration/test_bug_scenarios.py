"""End-to-end scenarios for every Table-2 bug and the motivating CVE.

Each scenario has two halves:

1. on the *flawed* kernel the crafted program loads (or the operation
   succeeds) and the indicator fires at runtime — captured by the
   sanitation or a kernel self-check;
2. on the *fixed* kernel the same program/operation is refused, and
   nothing fires — proving the oracle has no false positives.
"""

from __future__ import annotations

import pytest

from repro.errors import (
    BpfError,
    KasanReport,
    KernelPanic,
    LockdepReport,
    NullDerefReport,
    RecursionReport,
    SanitizerReport,
    VerifierReject,
    WarnReport,
)
from repro.kernel.config import PROFILES, Flaw
from repro.kernel.syscall import Kernel
from repro.ebpf import asm
from repro.ebpf.helpers import HelperId
from repro.ebpf.kfuncs import KFUNC_RAND
from repro.ebpf.maps import MapType
from repro.ebpf.opcodes import AluOp, JmpOp, Reg, Size
from repro.ebpf.program import BpfProgram, ProgType
from repro.runtime.executor import Executor


def flawed():
    return Kernel(PROFILES["bpf-next"]())


def fixed():
    return Kernel(PROFILES["patched"]())


def lookup_preamble(fd):
    return [
        asm.st_mem(Size.DW, Reg.R10, -8, 0),
        *asm.ld_map_fd(Reg.R1, fd),
        asm.mov64_reg(Reg.R2, Reg.R10),
        asm.alu64_imm(AluOp.ADD, Reg.R2, -8),
        asm.call_helper(HelperId.MAP_LOOKUP_ELEM),
    ]


class TestBug1NullnessPropagation:
    def _prog(self, kernel, fd):
        return BpfProgram(
            insns=[
                *asm.ld_btf_id(Reg.R6, kernel.btf.absent_ksym_id),
                *lookup_preamble(fd),
                asm.jmp_reg(JmpOp.JEQ, Reg.R0, Reg.R6, 1),
                asm.ja(1),
                asm.ldx_mem(Size.DW, Reg.R3, Reg.R0, 0),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
            prog_type=ProgType.KPROBE,
        )

    def test_flawed_kernel_sanitizer_catches(self):
        kernel = flawed()
        fd = kernel.map_create(MapType.HASH, 8, 16, 4)
        verified = kernel.prog_load(self._prog(kernel, fd), sanitize=True)
        result = Executor(kernel).run(verified)
        assert isinstance(result.report, SanitizerReport)
        assert result.report.address == 0

    def test_fixed_kernel_rejects(self):
        kernel = fixed()
        fd = kernel.map_create(MapType.HASH, 8, 16, 4)
        with pytest.raises(VerifierReject) as exc:
            kernel.prog_load(self._prog(kernel, fd))
        assert "possibly NULL" in exc.value.message

    def test_propagation_without_btf_is_legitimate(self):
        # Comparing against a genuinely non-null pointer (stack) is the
        # sound use of the pass and must load on the fixed kernel.
        kernel = fixed()
        fd = kernel.map_create(MapType.HASH, 8, 16, 4)
        prog = BpfProgram(
            insns=[
                asm.mov64_reg(Reg.R6, Reg.R10),
                *lookup_preamble(fd),
                asm.jmp_reg(JmpOp.JEQ, Reg.R0, Reg.R6, 1),
                asm.ja(1),
                asm.ldx_mem(Size.DW, Reg.R3, Reg.R0, 0),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
            prog_type=ProgType.KPROBE,
        )
        verified = kernel.prog_load(prog, sanitize=True)
        result = Executor(kernel).run(verified)
        assert result.report is None  # never equal at runtime


class TestBug2TaskStructOob:
    def _prog(self):
        return BpfProgram(
            insns=[
                asm.call_helper(HelperId.GET_CURRENT_TASK_BTF),
                asm.ldx_mem(Size.DW, Reg.R1, Reg.R0, 128),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
            prog_type=ProgType.KPROBE,
        )

    def test_flawed_kernel_sanitizer_catches(self):
        kernel = flawed()
        verified = kernel.prog_load(self._prog(), sanitize=True)
        result = Executor(kernel).run(verified)
        assert isinstance(result.report, SanitizerReport)

    def test_fixed_kernel_rejects(self):
        with pytest.raises(VerifierReject):
            fixed().prog_load(self._prog())


class TestBug3KfuncBacktrack:
    def _prog(self, fd):
        return BpfProgram(
            insns=[
                *lookup_preamble(fd),
                asm.jmp_imm(JmpOp.JNE, Reg.R0, 0, 2),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
                asm.mov64_reg(Reg.R6, Reg.R0),
                asm.mov64_imm(Reg.R0, 4),
                asm.call_kfunc(KFUNC_RAND),
                asm.alu64_reg(AluOp.ADD, Reg.R6, Reg.R0),
                asm.ldx_mem(Size.B, Reg.R3, Reg.R6, 0),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
            prog_type=ProgType.KPROBE,
        )

    def test_flawed_kernel_sanitizer_catches(self):
        kernel = flawed()
        fd = kernel.map_create(MapType.HASH, 8, 16, 4)
        kernel.map_update(fd, bytes(8), bytes(16))
        verified = kernel.prog_load(self._prog(fd), sanitize=True)
        result = Executor(kernel).run(verified)
        assert isinstance(result.report, (SanitizerReport, KernelPanic))

    def test_fixed_kernel_rejects(self):
        kernel = fixed()
        fd = kernel.map_create(MapType.HASH, 8, 16, 4)
        with pytest.raises(VerifierReject):
            kernel.prog_load(self._prog(fd))


def printk_prog():
    return BpfProgram(
        insns=[
            asm.mov64_reg(Reg.R1, Reg.R10),
            asm.alu64_imm(AluOp.ADD, Reg.R1, -8),
            asm.st_mem(Size.DW, Reg.R1, 0, 0x006968),
            asm.mov64_imm(Reg.R2, 8),
            asm.call_helper(HelperId.TRACE_PRINTK),
            asm.mov64_imm(Reg.R0, 0),
            asm.exit_insn(),
        ],
        prog_type=ProgType.KPROBE,
    )


class TestBug4TracePrintkDeadlock:
    def test_flawed_kernel_recursive_lock(self):
        kernel = flawed()
        verified = kernel.prog_load(printk_prog(), sanitize=True)
        kernel.prog_attach_tracepoint(verified, "bpf_trace_printk")
        result = Executor(kernel).run(verified)
        assert isinstance(result.report, (LockdepReport, RecursionReport))

    def test_fixed_kernel_refuses_attach(self):
        kernel = fixed()
        verified = kernel.prog_load(printk_prog())
        with pytest.raises(BpfError):
            kernel.prog_attach_tracepoint(verified, "bpf_trace_printk")

    def test_flawed_kernel_quiet_without_attach(self):
        kernel = flawed()
        verified = kernel.prog_load(printk_prog(), sanitize=True)
        result = Executor(kernel).run(verified)
        assert result.report is None


class TestBug5ContentionBegin:
    def test_flawed_kernel_recursion(self):
        kernel = flawed()
        verified = kernel.prog_load(printk_prog(), sanitize=True)
        kernel.prog_attach_tracepoint(verified, "contention_begin")
        result = Executor(kernel).run(verified)
        assert isinstance(result.report, (RecursionReport, LockdepReport))

    def test_fixed_kernel_refuses_attach(self):
        kernel = fixed()
        verified = kernel.prog_load(printk_prog())
        with pytest.raises(BpfError):
            kernel.prog_attach_tracepoint(verified, "contention_begin")


class TestBug6SignalPanic:
    def _prog(self):
        return BpfProgram(
            insns=[
                asm.mov64_imm(Reg.R1, 9),
                asm.call_helper(HelperId.SEND_SIGNAL),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
            prog_type=ProgType.PERF_EVENT,
        )

    def test_flawed_kernel_panics(self):
        kernel = flawed()
        verified = kernel.prog_load(self._prog(), sanitize=True)
        result = Executor(kernel).run(verified)
        assert isinstance(result.report, KernelPanic)

    def test_fixed_kernel_rejects(self):
        with pytest.raises(VerifierReject) as exc:
            fixed().prog_load(self._prog())
        assert "NMI" in exc.value.message

    def test_kprobe_context_is_fine(self):
        # Same helper from a non-NMI program type: legal everywhere.
        kernel = fixed()
        prog = BpfProgram(
            insns=self._prog().insns, prog_type=ProgType.KPROBE
        )
        verified = kernel.prog_load(prog)
        result = Executor(kernel).run(verified)
        assert result.report is None


def xdp_prog(offload=None):
    return BpfProgram(
        insns=[asm.mov64_imm(Reg.R0, 2), asm.exit_insn()],
        prog_type=ProgType.XDP,
        offload_dev=offload,
    )


class TestBug7DispatcherRace:
    def test_flawed_kernel_null_deref(self):
        kernel = flawed()
        v1 = kernel.prog_load(xdp_prog())
        v2 = kernel.prog_load(xdp_prog())
        kernel.prog_attach_xdp(v1)
        kernel.prog_attach_xdp(v2)  # update without sync
        result = Executor(kernel).run_xdp_via_dispatcher()
        assert isinstance(result.report, NullDerefReport)

    def test_fixed_kernel_survives_updates(self):
        kernel = fixed()
        v1 = kernel.prog_load(xdp_prog())
        v2 = kernel.prog_load(xdp_prog())
        kernel.prog_attach_xdp(v1)
        kernel.prog_attach_xdp(v2)
        result = Executor(kernel).run_xdp_via_dispatcher()
        assert result.report is None
        assert result.r0 == 2


class TestBug8KmemdupLimit:
    def _large_prog(self, kernel):
        body = []
        for _ in range(150):
            body.append(asm.st_mem(Size.DW, Reg.R10, -8, 1))
            body.append(asm.ldx_mem(Size.DW, Reg.R0, Reg.R10, -8))
        return BpfProgram(
            insns=[*body, asm.mov64_imm(Reg.R0, 0), asm.exit_insn()],
        )

    def test_flawed_kernel_info_fails(self):
        kernel = flawed()
        verified = kernel.prog_load(self._large_prog(kernel), sanitize=True)
        assert len(verified.xlated) > 256
        with pytest.raises(BpfError) as exc:
            kernel.prog_get_info(verified)
        assert "kmemdup" in exc.value.message

    def test_fixed_kernel_info_succeeds(self):
        kernel = fixed()
        verified = kernel.prog_load(self._large_prog(kernel), sanitize=True)
        info = kernel.prog_get_info(verified)
        assert info["xlated_prog_len"] == len(verified.xlated) * 8

    def test_small_programs_unaffected_when_flawed(self):
        kernel = flawed()
        verified = kernel.prog_load(xdp_prog())
        kernel.prog_get_info(verified)


class TestBug9MapBucketIter:
    def _key_in_last_bucket(self, bpf_map):
        for i in range(100000):
            key = i.to_bytes(8, "little")
            if bpf_map._bucket_of(key) == bpf_map.n_buckets - 1:
                return key
        raise AssertionError

    def test_flawed_kernel_oob(self):
        kernel = flawed()
        fd = kernel.map_create(MapType.HASH, 8, 8, 8)
        bpf_map = kernel.map_by_fd(fd)
        key = self._key_in_last_bucket(bpf_map)
        kernel.map_update(fd, key, bytes(8))
        with pytest.raises(KasanReport):
            kernel.map_get_next_key(fd, key)

    def test_fixed_kernel_iterates_cleanly(self):
        kernel = fixed()
        fd = kernel.map_create(MapType.HASH, 8, 8, 8)
        bpf_map = kernel.map_by_fd(fd)
        key = self._key_in_last_bucket(bpf_map)
        kernel.map_update(fd, key, bytes(8))
        with pytest.raises(BpfError):  # ENOENT: end of iteration
            kernel.map_get_next_key(fd, key)


class TestBug10IrqWorkLock:
    def _prog(self, fd):
        return BpfProgram(
            insns=[
                asm.st_mem(Size.DW, Reg.R10, -8, 7),
                *asm.ld_map_fd(Reg.R1, fd),
                asm.mov64_reg(Reg.R2, Reg.R10),
                asm.alu64_imm(AluOp.ADD, Reg.R2, -8),
                asm.mov64_imm(Reg.R3, 8),
                asm.mov64_imm(Reg.R4, 0),
                asm.call_helper(HelperId.RINGBUF_OUTPUT),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
            prog_type=ProgType.KPROBE,  # runs in irq-ish context
        )

    def test_flawed_kernel_lockdep(self):
        kernel = flawed()
        fd = kernel.map_create(MapType.RINGBUF, 0, 0, 4096)
        verified = kernel.prog_load(self._prog(fd), sanitize=True)
        result = Executor(kernel).run(verified)
        assert isinstance(result.report, LockdepReport)

    def test_fixed_kernel_clean(self):
        kernel = fixed()
        fd = kernel.map_create(MapType.RINGBUF, 0, 0, 4096)
        verified = kernel.prog_load(self._prog(fd))
        result = Executor(kernel).run(verified)
        assert result.report is None


class TestBug11XdpOffload:
    def test_flawed_kernel_runs_on_host(self):
        kernel = flawed()
        verified = kernel.prog_load(xdp_prog(offload="netdev0"))
        result = Executor(kernel).run(verified)
        assert isinstance(result.report, WarnReport)

    def test_fixed_kernel_refuses_host_run(self):
        kernel = fixed()
        verified = kernel.prog_load(xdp_prog(offload="netdev0"))
        result = Executor(kernel).run(verified)
        assert result.report is None
        assert result.error is not None  # EINVAL, not a crash


class TestCve202223222:
    def _prog(self, fd):
        return BpfProgram(
            insns=[
                *lookup_preamble(fd),
                asm.mov64_reg(Reg.R1, Reg.R0),
                asm.alu64_imm(AluOp.ADD, Reg.R1, 8),
                asm.jmp_imm(JmpOp.JEQ, Reg.R1, 0, 2),
                asm.st_mem(Size.DW, Reg.R1, 0, 0x42),
                asm.ja(0),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
        )

    def test_v5_15_sanitizer_catches(self):
        kernel = Kernel(PROFILES["v5.15"]())
        fd = kernel.map_create(MapType.HASH, 8, 16, 4)
        verified = kernel.prog_load(self._prog(fd), sanitize=True)
        result = Executor(kernel).run(verified)
        assert isinstance(result.report, SanitizerReport)
        assert result.report.is_write
        assert result.report.address == 8

    def test_v6_1_rejects(self):
        kernel = Kernel(PROFILES["v6.1"]())
        fd = kernel.map_create(MapType.HASH, 8, 16, 4)
        with pytest.raises(VerifierReject):
            kernel.prog_load(self._prog(fd))
