"""Cross-kernel-version behaviour: each profile exposes its own bugs.

The paper tests Linux v5.15, v6.1, and bpf-next; bugs exist (and are
discoverable) only in the versions whose code contains them — e.g.
CVE-2022-23222 only pre-v5.16, Bug #1 only where the nullness
propagation pass exists.
"""

from __future__ import annotations

import pytest

from repro.kernel.config import PROFILES, Flaw
from repro.fuzz.campaign import Campaign, CampaignConfig


class TestProfileFeatureMatrix:
    def test_v5_15_lacks_kfuncs_and_propagation(self):
        config = PROFILES["v5.15"]()
        assert not config.has_kfuncs
        assert not config.has_nullness_propagation
        assert config.has_flaw(Flaw.CVE_2022_23222)
        assert not config.has_flaw(Flaw.NULLNESS_PROPAGATION)

    def test_v6_1_fixed_the_cve(self):
        config = PROFILES["v6.1"]()
        assert not config.has_flaw(Flaw.CVE_2022_23222)
        assert config.has_kfuncs

    def test_bpf_next_has_every_table2_bug(self):
        config = PROFILES["bpf-next"]()
        for flaw in Flaw:
            if flaw == Flaw.CVE_2022_23222:
                assert not config.has_flaw(flaw)
            else:
                assert config.has_flaw(flaw), flaw


class TestVersionScopedDiscovery:
    @pytest.fixture(scope="class")
    def campaigns(self):
        results = {}
        for version in ("v5.15", "v6.1", "bpf-next"):
            results[version] = Campaign(
                CampaignConfig(
                    tool="bvf", kernel_version=version, budget=700, seed=77
                )
            ).run()
        return results

    def test_findings_only_from_present_flaws(self, campaigns):
        for version, result in campaigns.items():
            present = {f.value for f in PROFILES[version]().flaws}
            for bug_id in result.findings:
                if bug_id.startswith(("bug", "cve")):
                    assert bug_id in present, (
                        f"{version} reported {bug_id} which it does not have"
                    )

    def test_v5_15_can_find_the_cve(self, campaigns):
        # The CVE has a broad trigger (any ALU on a nullable pointer);
        # a modest budget finds it on the affected version.
        assert Flaw.CVE_2022_23222.value in campaigns["v5.15"].findings

    def test_kfunc_bug_needs_kfunc_support(self, campaigns):
        assert Flaw.KFUNC_BACKTRACK.value not in campaigns["v5.15"].findings
        assert Flaw.KFUNC_BACKTRACK.value not in campaigns["v6.1"].findings

    def test_every_version_finds_something(self, campaigns):
        for version, result in campaigns.items():
            assert result.findings, f"{version} campaign found nothing"
