"""The paper's listings, as executable tests.

- **Table 1**: the verifier's workflow on the canonical map-lookup
  program — register states checked via the level-2 verifier log.
- **Listing 1** (CVE-2022-23222) and **Listing 2** (Bug #1) are covered
  in test_bug_scenarios.py; here we additionally check the *fix*
  behaviours of Listing 3 (the nullness-propagation filter).
"""

from __future__ import annotations

import pytest

from repro.kernel.config import PROFILES
from repro.kernel.syscall import Kernel
from repro.ebpf import asm
from repro.ebpf.helpers import HelperId
from repro.ebpf.maps import MapType
from repro.ebpf.opcodes import AluOp, JmpOp, Reg, Size
from repro.ebpf.program import BpfProgram, ProgType
from repro.verifier.core import Verifier


class TestTable1Workflow:
    """'Example of the verifier's workflow' — Table 1 of the paper."""

    def _verify_with_log(self, kernel, insns):
        verifier = Verifier(
            kernel, BpfProgram(insns=list(insns)), log_level=2
        )
        verifier.verify()
        return verifier.log.text().splitlines()

    def test_register_states_through_lookup(self, patched_kernel):
        fd = patched_kernel.map_create(MapType.HASH, 8, 8, 4)
        log = self._verify_with_log(
            patched_kernel,
            [
                *asm.ld_map_fd(Reg.R1, fd),          # R1 = map_ptr
                asm.mov64_reg(Reg.R2, Reg.R10),       # R2 = fp
                asm.alu64_imm(AluOp.ADD, Reg.R2, -8),
                asm.st_mem(Size.DW, Reg.R2, 0, 0),    # fp-8 = 0
                asm.call_helper(HelperId.MAP_LOOKUP_ELEM),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
        )
        # "initial state of regs": R1 is ctx, R10 is the frame pointer.
        assert "R1=ptr_to_ctx" in log[0]
        assert "R10=ptr_to_stack" in log[0]
        # After the map-fd load, R1 is a pointer to the map.
        after_ld = next(l for l in log if l.startswith("2:"))
        assert "R1=const_ptr_to_map" in after_ld
        # After `r2 = r10; r2 += -8`, R2 is a stack pointer at -8.
        after_add = next(l for l in log if l.startswith("4:"))
        assert "R2=ptr_to_stack(off=-8)" in after_add
        # After the call, R0 is the nullable pointer to the map value.
        after_call = next(l for l in log if l.startswith("6:"))
        assert "R0=ptr_to_map_value_or_null" in after_call

    def test_uninitialised_key_rejected_as_table1_requires(
        self, patched_kernel
    ):
        """'all the memory must be properly initialized before use'."""
        from repro.errors import VerifierReject

        fd = patched_kernel.map_create(MapType.HASH, 8, 8, 4)
        with pytest.raises(VerifierReject):
            patched_kernel.prog_load(
                BpfProgram(
                    insns=[
                        *asm.ld_map_fd(Reg.R1, fd),
                        asm.mov64_reg(Reg.R2, Reg.R10),
                        asm.alu64_imm(AluOp.ADD, Reg.R2, -8),
                        # missing: store to fp-8
                        asm.call_helper(HelperId.MAP_LOOKUP_ELEM),
                        asm.mov64_imm(Reg.R0, 0),
                        asm.exit_insn(),
                    ]
                )
            )


class TestListing3Fix:
    """The Listing-3 patch: filter PTR_TO_BTF_ID from the propagation."""

    def _program(self, kernel, fd, other_reg_setup):
        return BpfProgram(
            insns=[
                *other_reg_setup,
                asm.st_mem(Size.DW, Reg.R10, -8, 0),
                *asm.ld_map_fd(Reg.R1, fd),
                asm.mov64_reg(Reg.R2, Reg.R10),
                asm.alu64_imm(AluOp.ADD, Reg.R2, -8),
                asm.call_helper(HelperId.MAP_LOOKUP_ELEM),
                asm.jmp_reg(JmpOp.JEQ, Reg.R0, Reg.R6, 1),
                asm.ja(1),
                asm.ldx_mem(Size.DW, Reg.R3, Reg.R0, 0),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
            prog_type=ProgType.KPROBE,
        )

    def test_btf_comparison_filtered(self, patched_kernel):
        """With the fix, propagation skips PTR_TO_BTF_ID operands: the
        dereference stays unproven and the program is rejected."""
        from repro.errors import VerifierReject

        fd = patched_kernel.map_create(MapType.HASH, 8, 8, 4)
        setup = [*asm.ld_btf_id(Reg.R6, patched_kernel.btf.current_task_id)]
        with pytest.raises(VerifierReject) as exc:
            patched_kernel.prog_load(self._program(patched_kernel, fd, setup))
        assert "possibly NULL" in exc.value.message

    def test_non_btf_comparison_still_propagates(self, patched_kernel):
        """The fix keeps the feature for genuinely non-null pointers."""
        fd = patched_kernel.map_create(MapType.HASH, 8, 8, 4)
        setup = [asm.mov64_reg(Reg.R6, Reg.R10)]
        patched_kernel.prog_load(self._program(patched_kernel, fd, setup))

    def test_feature_absent_before_the_commit(self, v6_1_kernel):
        """Pre-bfeae75856ab kernels have no propagation at all."""
        from repro.errors import VerifierReject

        fd = v6_1_kernel.map_create(MapType.HASH, 8, 8, 4)
        setup = [asm.mov64_reg(Reg.R6, Reg.R10)]
        with pytest.raises(VerifierReject):
            v6_1_kernel.prog_load(self._program(v6_1_kernel, fd, setup))
