"""The oracle's no-false-positive property, exercised generatively.

Section 6.5: "BVF experiences a low probability of false positives and
we didn't find such cases during the experiment."  In the reproduction
this is a hard invariant: on a fully-fixed kernel, *every* program the
verifier accepts must execute without raising any kernel report —
sanitized or raw — across every program type and execution path the
campaign drives.
"""

from __future__ import annotations

import pytest

from repro.errors import BpfError, VerifierReject
from repro.kernel.config import PROFILES
from repro.kernel.syscall import Kernel
from repro.ebpf.program import BpfProgram
from repro.fuzz.generator import StructuredGenerator
from repro.fuzz.rng import FuzzRng
from repro.runtime.executor import Executor


@pytest.mark.parametrize("seed", range(12))
def test_generated_programs_run_clean_on_patched_kernel(seed):
    rng = FuzzRng(seed * 7919)
    checked = 0
    for _ in range(40):
        kernel = Kernel(PROFILES["patched"]())
        gp = StructuredGenerator(kernel, rng).generate()
        try:
            verified = kernel.prog_load(
                BpfProgram(insns=gp.insns, prog_type=gp.prog_type,
                           offload_dev=gp.offload_dev),
                sanitize=True,
            )
        except (VerifierReject, BpfError):
            continue
        checked += 1
        executor = Executor(kernel)
        result = executor.run(verified)
        assert result.report is None, (
            f"false positive on patched kernel (seed {seed}): "
            f"{result.report}"
        )
        # Drive the attachment paths too.
        if gp.plan.attach_tracepoint:
            try:
                kernel.prog_attach_tracepoint(verified,
                                              gp.plan.attach_tracepoint)
            except BpfError:
                continue
            trigger = executor.trigger_tracepoint(gp.plan.attach_tracepoint)
            assert trigger.report is None, (
                f"false positive via tracepoint (seed {seed}): "
                f"{trigger.report}"
            )
    assert checked > 5  # the acceptance rate keeps this comfortably true


def test_raw_and_sanitized_agree_on_accepted_programs():
    """Instrumentation must never change a program's result."""
    rng = FuzzRng(424242)
    compared = 0
    for _ in range(60):
        kernel_a = Kernel(PROFILES["patched"]())
        gp = StructuredGenerator(kernel_a, rng).generate()
        prog = BpfProgram(insns=list(gp.insns), prog_type=gp.prog_type)
        try:
            raw = kernel_a.prog_load(prog, sanitize=False)
        except (VerifierReject, BpfError):
            continue
        # Replay the same program sanitized in an identical kernel.
        kernel_b = Kernel(PROFILES["patched"]())
        for m in gp.maps:
            kernel_b.map_create(m.map_type, m.key_size, m.value_size,
                                m.max_entries,
                                has_spin_lock=getattr(m, "has_spin_lock",
                                                      False))
        san = kernel_b.prog_load(
            BpfProgram(insns=list(gp.insns), prog_type=gp.prog_type),
            sanitize=True,
        )
        r_raw = Executor(kernel_a).run(raw)
        r_san = Executor(kernel_b).run(san)
        assert r_raw.report is None and r_san.report is None
        assert r_raw.r0 == r_san.r0, "sanitation changed program semantics"
        compared += 1
    assert compared > 5
