"""Instrumentation-pass tests: dispatch sequences and skip rules."""

from __future__ import annotations

import pytest

from repro.kernel.config import PROFILES
from repro.kernel.syscall import Kernel
from repro.ebpf import asm
from repro.ebpf.helpers import HelperId
from repro.ebpf.maps import MapType
from repro.ebpf.opcodes import AluOp, AtomicOp, JmpOp, Reg, Size
from repro.ebpf.program import BpfProgram, ProgType
from repro.sanitizer.asan_funcs import ASAN_LOAD, ASAN_STORE, is_asan_call
from repro.sanitizer.instrument import build_insertions


class TestBuildInsertions:
    def test_load_instrumented(self):
        prog = [
            asm.mov64_reg(Reg.R1, Reg.R10),
            asm.alu64_imm(AluOp.ADD, Reg.R1, -8),
            asm.st_mem(Size.DW, Reg.R1, 0, 5),
            asm.ldx_mem(Size.W, Reg.R0, Reg.R1, 0),
            asm.exit_insn(),
        ]
        insertions, sites = build_insertions(prog, set())
        assert set(insertions) == {2, 3}
        assert sites[3].size == 4 and not sites[3].is_write
        assert sites[2].size == 8 and sites[2].is_write

    def test_dispatch_sequence_shape(self):
        prog = [asm.ldx_mem(Size.DW, Reg.R0, Reg.R2, 16), asm.exit_insn()]
        insertions, _ = build_insertions(prog, set())
        block = insertions[0]
        assert len(block) == 5
        assert block[0] == asm.mov64_reg(Reg.AX, Reg.R1)
        assert block[1] == asm.mov64_reg(Reg.R1, Reg.R2)
        assert block[2] == asm.alu64_imm(AluOp.ADD, Reg.R1, 16)
        assert block[3].is_helper_call()
        assert block[3].imm == ASAN_LOAD[8]
        assert block[4] == asm.mov64_reg(Reg.R1, Reg.AX)

    def test_r10_accesses_skipped(self):
        """Reduction rule 1: stack-pointer accesses are pre-validated."""
        prog = [
            asm.st_mem(Size.DW, Reg.R10, -8, 1),
            asm.ldx_mem(Size.DW, Reg.R0, Reg.R10, -8),
            asm.exit_insn(),
        ]
        insertions, sites = build_insertions(prog, set())
        assert not insertions
        assert not sites

    def test_atomic_instrumented_as_store(self):
        prog = [
            asm.atomic_op(Size.DW, AtomicOp.ADD, Reg.R2, Reg.R1, 0),
            asm.exit_insn(),
        ]
        insertions, sites = build_insertions(prog, set())
        assert insertions[0][3].imm == ASAN_STORE[8]
        assert sites[0].is_write

    def test_probe_mem_flag_carried(self):
        prog = [asm.ldx_mem(Size.DW, Reg.R0, Reg.R2, 0), asm.exit_insn()]
        _, sites = build_insertions(prog, probe_mem={0})
        assert sites[0].probe_mem

    def test_alu_and_jumps_not_instrumented(self):
        prog = [
            asm.mov64_imm(Reg.R0, 0),
            asm.jmp_imm(JmpOp.JEQ, Reg.R0, 0, 0),
            asm.exit_insn(),
        ]
        insertions, _ = build_insertions(prog, set())
        assert not insertions


class TestEndToEndInstrumentation:
    def _map_prog(self, fd):
        return BpfProgram(
            insns=[
                asm.st_mem(Size.DW, Reg.R10, -8, 0),
                *asm.ld_map_fd(Reg.R1, fd),
                asm.mov64_reg(Reg.R2, Reg.R10),
                asm.alu64_imm(AluOp.ADD, Reg.R2, -8),
                asm.call_helper(HelperId.MAP_LOOKUP_ELEM),
                asm.jmp_imm(JmpOp.JNE, Reg.R0, 0, 2),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
                asm.ldx_mem(Size.DW, Reg.R3, Reg.R0, 0),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ]
        )

    def test_footprint_grows(self, patched_kernel):
        fd = patched_kernel.map_create(MapType.HASH, 8, 8, 4)
        raw = patched_kernel.prog_load(self._map_prog(fd))
        fd2 = patched_kernel.map_create(MapType.HASH, 8, 8, 4)
        san = patched_kernel.prog_load(self._map_prog(fd2), sanitize=True)
        assert len(san.xlated) > len(raw.xlated)
        assert san.sanitized
        assert not raw.sanitized

    def test_sanitizer_metadata_keyed_by_call_index(self, patched_kernel):
        fd = patched_kernel.map_create(MapType.HASH, 8, 8, 4)
        san = patched_kernel.prog_load(self._map_prog(fd), sanitize=True)
        for call_idx, site in san.sanitizer_meta.items():
            insn = san.xlated[call_idx]
            assert insn.is_helper_call()
            assert is_asan_call(insn.imm)
            original = san.xlated[site.orig_idx]
            assert original.is_memory_load() or original.is_memory_store()

    def test_sanitize_unavailable_kernel(self):
        from repro.kernel.config import KernelConfig
        from repro.errors import BpfError

        kernel = Kernel(KernelConfig(version="nosan", sanitizer_available=False))
        with pytest.raises(BpfError):
            kernel.prog_load(
                BpfProgram(insns=[asm.mov64_imm(Reg.R0, 0), asm.exit_insn()]),
                sanitize=True,
            )
