"""Sanitizing-function semantics."""

from __future__ import annotations

import pytest

from repro.errors import SanitizerReport
from repro.kernel.kasan import KernelMemory
from repro.sanitizer.asan_funcs import (
    ASAN_ALU_LIMIT,
    ASAN_LOAD,
    ASAN_STORE,
    asan_call_size,
    asan_check,
    is_asan_call,
)
from repro.sanitizer.alu_limit import check_alu_limit
from repro.errors import AluLimitViolation


class TestIds:
    def test_ids_distinct(self):
        ids = list(ASAN_LOAD.values()) + list(ASAN_STORE.values()) + [ASAN_ALU_LIMIT]
        assert len(set(ids)) == len(ids)

    def test_is_asan_call(self):
        assert is_asan_call(ASAN_LOAD[8])
        assert is_asan_call(ASAN_STORE[1])
        assert is_asan_call(ASAN_ALU_LIMIT)
        assert not is_asan_call(1)  # map_lookup_elem

    def test_call_size_mapping(self):
        assert asan_call_size(ASAN_LOAD[4]) == (4, False)
        assert asan_call_size(ASAN_STORE[2]) == (2, True)
        with pytest.raises(KeyError):
            asan_call_size(12345)


class TestAsanCheck:
    def test_valid_access_passes(self):
        mem = KernelMemory()
        a = mem.kmalloc(16)
        assert asan_check(mem, a.start, 8, is_write=False)

    def test_oob_raises_sanitizer_report(self):
        mem = KernelMemory()
        a = mem.kmalloc(8)
        with pytest.raises(SanitizerReport) as exc:
            asan_check(mem, a.start + 4, 8, is_write=True, site=7)
        assert exc.value.context["site"] == 7
        assert exc.value.is_write

    def test_null_raises(self):
        mem = KernelMemory()
        with pytest.raises(SanitizerReport):
            asan_check(mem, 0, 8, is_write=False)

    def test_probe_mem_tolerates_null(self):
        mem = KernelMemory()
        assert asan_check(mem, 0, 8, is_write=False, probe_mem=True) is False

    def test_probe_mem_tolerates_unmapped(self):
        mem = KernelMemory()
        ok = asan_check(mem, 0x4141_4141_4141, 8, is_write=False, probe_mem=True)
        assert ok is False

    def test_probe_mem_still_catches_slab_oob(self):
        """Bug #2's capture path: OOB within the arena traps even for
        fault-handled loads."""
        mem = KernelMemory()
        a = mem.kmalloc(8)
        with pytest.raises(SanitizerReport):
            asan_check(mem, a.start + 8, 8, is_write=False, probe_mem=True)


class TestAluLimit:
    def test_within_limit_passes(self):
        check_alu_limit(7, 8)

    def test_at_limit_fails(self):
        with pytest.raises(AluLimitViolation):
            check_alu_limit(8, 8)

    def test_violation_carries_context(self):
        with pytest.raises(AluLimitViolation) as exc:
            check_alu_limit(100, 8, site=3)
        assert exc.value.context["limit"] == 8
        assert exc.value.context["site"] == 3
