"""Sharded parallel-campaign tests: invariance, determinism, merging."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.fuzz.campaign import CampaignConfig
from repro.fuzz.corpus import MapSpec
from repro.fuzz.oracle import BugFinding
from repro.fuzz.parallel import (
    ParallelCampaign,
    ShardResult,
    merge_shards,
    shard_budgets,
)
from repro.fuzz.rng import FuzzRng, derive_seed


def finding(bug_id: str, iteration: int) -> BugFinding:
    return BugFinding(
        bug_id=bug_id,
        indicator="indicator1",
        report_kind="test",
        message=bug_id,
        iteration=iteration,
    )


class TestShardBudgets:
    def test_even_split(self):
        assert shard_budgets(100, 4) == [25, 25, 25, 25]

    def test_remainder_goes_to_leading_shards(self):
        assert shard_budgets(10, 3) == [4, 3, 3]

    def test_no_empty_shards(self):
        assert shard_budgets(3, 8) == [1, 1, 1]

    def test_total_preserved(self):
        for budget in (1, 7, 100, 301):
            for shards in (1, 3, 8):
                assert sum(shard_budgets(budget, shards)) == budget

    def test_zero_budget(self):
        assert shard_budgets(0, 4) == []


class TestSeedDerivation:
    def test_deterministic(self):
        assert derive_seed(42, 3) == derive_seed(42, 3)

    def test_lanes_distinct(self):
        seeds = {derive_seed(0, i) for i in range(64)}
        assert len(seeds) == 64

    def test_seed_distinct(self):
        assert derive_seed(1, 0) != derive_seed(2, 0)

    def test_derived_rng_streams_diverge(self):
        a = FuzzRng.derived(9, 0)
        b = FuzzRng.derived(9, 1)
        assert [a.randint(0, 10**9) for _ in range(4)] != [
            b.randint(0, 10**9) for _ in range(4)
        ]


class TestMergeShards:
    def shard(self, index, start, **kw) -> ShardResult:
        defaults = dict(
            index=index,
            start_iteration=start,
            seed=derive_seed(0, index),
            generated=10,
            accepted=5,
        )
        defaults.update(kw)
        return ShardResult(**defaults)

    def test_counters_sum(self):
        merged = merge_shards(
            CampaignConfig(budget=20),
            [
                self.shard(0, 0, reject_errnos=Counter({22: 3}),
                           insn_classes=Counter({"alu": 7}), corpus_size=2),
                self.shard(1, 10, reject_errnos=Counter({22: 1, 13: 2}),
                           insn_classes=Counter({"alu": 1}), corpus_size=3),
            ],
        )
        assert merged.generated == 20
        assert merged.accepted == 10
        assert merged.reject_errnos == Counter({22: 4, 13: 2})
        assert merged.insn_classes == Counter({"alu": 8})
        assert merged.corpus_size == 5

    def test_findings_dedup_keeps_earliest_global_iteration(self):
        merged = merge_shards(
            CampaignConfig(budget=20),
            [
                self.shard(0, 0, findings={"bug-5": finding("bug-5", 8)}),
                self.shard(1, 10, findings={"bug-5": finding("bug-5", 12),
                                            "bug-7": finding("bug-7", 14)}),
            ],
        )
        assert set(merged.findings) == {"bug-5", "bug-7"}
        assert merged.findings["bug-5"].iteration == 8

    def test_dedup_order_independent(self):
        shards = [
            self.shard(0, 0, findings={"bug-5": finding("bug-5", 9)}),
            self.shard(1, 10, findings={"bug-5": finding("bug-5", 11)}),
        ]
        a = merge_shards(CampaignConfig(budget=20), shards)
        b = merge_shards(CampaignConfig(budget=20), list(reversed(shards)))
        assert a.findings["bug-5"].iteration == b.findings["bug-5"].iteration == 9

    def test_coverage_union_no_double_count(self):
        merged = merge_shards(
            CampaignConfig(budget=20),
            [
                self.shard(0, 0, edges=frozenset({1, 2, 3}),
                           edge_samples=[(5, frozenset({1, 2})),
                                         (10, frozenset({3}))]),
                self.shard(1, 10, edges=frozenset({2, 3, 4}),
                           edge_samples=[(5, frozenset({2, 4})),
                                         (10, frozenset({3}))]),
            ],
        )
        assert merged.final_coverage == 4  # union of {1,2,3} and {2,3,4}
        # Curve x axis is cumulative programs across the fleet and the
        # y axis reaches the merged total without double-counting.
        assert merged.coverage_curve[-1] == (20, 4)
        xs = [x for x, _ in merged.coverage_curve]
        ys = [y for _, y in merged.coverage_curve]
        assert xs == sorted(xs)
        assert ys == sorted(ys)
        # Incremental samples re-union to the same edge set.
        union = set().union(*(s for _, s in merged.edge_samples))
        assert len(union) == 4

    def test_timing_sums_over_shards(self):
        merged = merge_shards(
            CampaignConfig(budget=20),
            [
                self.shard(0, 0, generate_seconds=1.0, verify_seconds=2.0,
                           execute_seconds=0.5),
                self.shard(1, 10, generate_seconds=0.5, verify_seconds=1.0,
                           execute_seconds=0.25),
            ],
        )
        assert merged.generate_seconds == pytest.approx(1.5)
        assert merged.verify_seconds == pytest.approx(3.0)
        assert merged.execute_seconds == pytest.approx(0.75)


class TestParallelCampaign:
    CONFIG = CampaignConfig(
        tool="bvf", kernel_version="bpf-next", budget=120, seed=4
    )

    def run(self, workers):
        return ParallelCampaign(self.CONFIG, workers=workers).run()

    @pytest.fixture(scope="class")
    def serial(self):
        return self.run(workers=1)

    @pytest.fixture(scope="class")
    def parallel(self):
        return self.run(workers=4)

    def test_worker_count_invariance(self, serial, parallel):
        """workers is a throughput knob: merged results are identical."""
        assert serial.generated == parallel.generated == self.CONFIG.budget
        assert serial.accepted == parallel.accepted
        assert sorted(serial.findings) == sorted(parallel.findings)
        assert serial.final_coverage == parallel.final_coverage
        assert serial.coverage_curve == parallel.coverage_curve
        assert serial.edge_samples == parallel.edge_samples
        assert serial.reject_errnos == parallel.reject_errnos
        assert serial.insn_classes == parallel.insn_classes
        for bug_id in serial.findings:
            assert (serial.findings[bug_id].iteration
                    == parallel.findings[bug_id].iteration)

    def test_parallel_determinism(self, parallel):
        """Two identical parallel runs merge to identical results."""
        again = self.run(workers=4)
        assert again.accepted == parallel.accepted
        assert sorted(again.findings) == sorted(parallel.findings)
        assert again.final_coverage == parallel.final_coverage
        assert again.coverage_curve == parallel.coverage_curve

    def test_finds_bugs_on_flawed_kernel(self, parallel):
        assert len(parallel.findings) >= 3

    def test_shard_metadata(self, parallel):
        assert parallel.shards == len(parallel.shard_results)
        assert [s.index for s in parallel.shard_results] == list(
            range(parallel.shards)
        )
        starts = [s.start_iteration for s in parallel.shard_results]
        assert starts == sorted(starts)
        assert sum(s.generated for s in parallel.shard_results) == (
            self.CONFIG.budget
        )
        seeds = {s.seed for s in parallel.shard_results}
        assert len(seeds) == parallel.shards

    def test_findings_are_stripped_for_pickling(self, parallel):
        for finding_ in parallel.findings.values():
            if finding_.prog is not None:
                for spec in finding_.prog.maps:
                    assert isinstance(spec, MapSpec)

    def test_timing_populated(self, parallel):
        assert parallel.wall_seconds > 0
        assert parallel.verify_seconds > 0
        assert parallel.generate_seconds > 0

    def test_single_shard_inline(self):
        result = ParallelCampaign(
            CampaignConfig(tool="bvf", budget=20, seed=1),
            workers=4,
            shards=1,
        ).run()
        assert result.generated == 20
        assert result.shards == 1

    def test_shard_plan_independent_of_workers(self):
        few = ParallelCampaign(self.CONFIG, workers=1).shard_plan()
        many = ParallelCampaign(self.CONFIG, workers=16).shard_plan()
        assert few == many


class TestDifferentialInvariance:
    """Issue 6 satellite: the cross-version divergence artifacts are part
    of the worker-count-invariance contract — workers=1 and workers=4
    produce bit-identical ``strip_wall(artifact)``, differential section
    included."""

    CONFIG = CampaignConfig(
        tool="bvf",
        kernel_version="bpf-next",
        budget=60,
        seed=0,
        differential=True,
        check_invariants=True,
    )

    @pytest.fixture(scope="class")
    def serial(self):
        return ParallelCampaign(self.CONFIG, workers=1).run()

    @pytest.fixture(scope="class")
    def parallel(self):
        return ParallelCampaign(self.CONFIG, workers=4).run()

    def test_campaign_produces_divergences(self, serial):
        assert serial.divergences
        for key, div in serial.divergences.items():
            assert div["key"] == key

    def test_divergences_identical_across_workers(self, serial, parallel):
        assert serial.divergences == parallel.divergences

    def test_stripped_artifacts_identical(self, serial, parallel):
        from repro.obs.artifact import build_artifact, strip_wall

        a = strip_wall(build_artifact(serial))
        b = strip_wall(build_artifact(parallel))
        assert a == b
        assert a["differential"]["enabled"]
        assert a["differential"]["total"] == len(serial.divergences)

    def test_differential_findings_merged(self, serial):
        # Non-feature-gap divergences become findings with the
        # 'differential' indicator (or a registry bug_id).
        diff_findings = [
            f for f in serial.findings.values()
            if f.indicator == "differential"
        ]
        interesting = [
            d for d in serial.divergences.values()
            if d["classification"] != "feature-gap"
        ]
        assert len(diff_findings) == len(interesting)


class TestFlightInvariance:
    """Issue 8 satellite: flight-recorder explanations are part of the
    worker-count-invariance contract — workers=1 and workers=4 attach
    identical per-reason explanations (keyed by earliest global
    iteration), and the explained artifact survives strip_wall."""

    CONFIG = CampaignConfig(
        tool="bvf",
        kernel_version="bpf-next",
        budget=80,
        seed=5,
        flight=True,
    )

    @pytest.fixture(scope="class")
    def serial(self):
        return ParallelCampaign(self.CONFIG, workers=1).run()

    @pytest.fixture(scope="class")
    def parallel(self):
        return ParallelCampaign(self.CONFIG, workers=4).run()

    def test_campaign_produces_explanations(self, serial):
        assert serial.reject_explanations
        for reason, entry in serial.reject_explanations.items():
            assert entry["reason"] == reason
            assert entry["iteration"] >= 0
            assert entry["insn_idx"] >= 0
            assert entry["trail"]

    def test_every_reject_reason_is_explained(self, serial):
        assert (sorted(serial.reject_explanations)
                == sorted(serial.reject_reasons))

    def test_explanations_identical_across_workers(self, serial, parallel):
        assert serial.reject_explanations == parallel.reject_explanations

    def test_explanations_keep_earliest_global_iteration(self, parallel):
        # Per shard, the kept explanation is first-come; after the merge
        # the winner must be the globally earliest across shards.
        for reason, entry in parallel.reject_explanations.items():
            candidates = [
                shard.reject_explanations[reason]["iteration"]
                for shard in parallel.shard_results
                if reason in shard.reject_explanations
            ]
            assert entry["iteration"] == min(candidates)

    def test_stripped_artifacts_identical(self, serial, parallel):
        from repro.obs.artifact import build_artifact, strip_wall

        a = strip_wall(build_artifact(serial))
        b = strip_wall(build_artifact(parallel))
        assert a == b
        assert a["config"]["flight"] is True
        assert a["taxonomy"]["explanations"] == serial.reject_explanations


class TestWorkerBootstrapMetric:
    CONFIG = CampaignConfig(
        tool="bvf", kernel_version="bpf-next", budget=40, seed=0,
        collect_coverage=False,
    )

    def test_forked_workers_record_bootstrap(self):
        result = ParallelCampaign(self.CONFIG, workers=4, shards=4).run()
        assert result.bootstrap_seconds > 0
        assert result.setup_seconds > 0
        # Each shard's share is non-negative and sums to the total.
        per_shard = [s.bootstrap_seconds for s in result.shard_results]
        assert all(b >= 0 for b in per_shard)
        assert sum(per_shard) == pytest.approx(result.bootstrap_seconds)

    def test_bootstrap_lands_in_wall_metrics(self):
        result = ParallelCampaign(self.CONFIG, workers=2, shards=2).run()
        sums = result.metrics["wall"]["sums"]
        assert "worker.bootstrap_seconds" in sums
        assert "worker.setup_seconds" in sums
        assert sums["worker.bootstrap_seconds"] == pytest.approx(
            result.bootstrap_seconds
        )

    def test_bootstrap_is_wall_side_only(self):
        # The invariance contract must not see bootstrap timing.
        from repro.obs.metrics import strip_wall_fields

        result = ParallelCampaign(self.CONFIG, workers=2, shards=2).run()
        stripped = strip_wall_fields(result.metrics)
        assert "wall" not in stripped

    def test_inline_shards_attribute_bootstrap_once(self):
        # workers=1 runs shards in-process: only the first shard can
        # carry the (tiny) bootstrap interval; the rest must be zero.
        result = ParallelCampaign(self.CONFIG, workers=1, shards=4).run()
        later = [s.bootstrap_seconds for s in result.shard_results[1:]]
        assert later == [0.0, 0.0, 0.0]
