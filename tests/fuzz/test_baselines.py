"""Baseline-generator characterisation tests.

These pin down the properties the paper measures: Syzkaller's low
acceptance with EACCES/EINVAL-dominated rejections, and Buzzer's two
modes (near-zero acceptance vs ~97% with an ALU/JMP-dominated mix).
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.errors import BpfError, VerifierReject
from repro.kernel.config import PROFILES
from repro.kernel.syscall import Kernel
from repro.ebpf.opcodes import InsnClass
from repro.ebpf.program import BpfProgram
from repro.fuzz.baselines import BuzzerGenerator, SyzkallerGenerator
from repro.fuzz.rng import FuzzRng


def run_generator(make, n=200, seed=5):
    rng = FuzzRng(seed)
    accepted = 0
    errnos: Counter = Counter()
    classes: Counter = Counter()
    for _ in range(n):
        kernel = Kernel(PROFILES["bpf-next"]())
        gp = make(kernel, rng).generate()
        for insn in gp.insns:
            if not insn.is_filler():
                classes[insn.insn_class] += 1
        try:
            kernel.prog_load(BpfProgram(insns=gp.insns, prog_type=gp.prog_type))
            accepted += 1
        except (VerifierReject, BpfError) as exc:
            errnos[exc.errno] += 1
    return accepted / n, errnos, classes


class TestSyzkaller:
    def test_acceptance_band(self):
        rate, _, _ = run_generator(SyzkallerGenerator)
        assert 0.10 <= rate <= 0.45  # paper: 23.5%

    def test_rejections_dominated_by_eacces_einval(self):
        import errno

        _, errnos, _ = run_generator(SyzkallerGenerator)
        top_two = {e for e, _ in errnos.most_common(2)}
        assert top_two <= {errno.EACCES, errno.EINVAL}

    def test_uses_many_instruction_kinds(self):
        _, _, classes = run_generator(SyzkallerGenerator)
        assert len(classes) >= 5


class TestBuzzer:
    def test_random_mode_near_zero_acceptance(self):
        rate, _, _ = run_generator(
            lambda k, r: BuzzerGenerator(k, r, mode="random"), n=150
        )
        assert rate <= 0.08  # paper: ~1%

    def test_alu_jmp_mode_high_acceptance(self):
        rate, _, _ = run_generator(
            lambda k, r: BuzzerGenerator(k, r, mode="alu_jmp"), n=150
        )
        assert rate >= 0.90  # paper: ~97%

    def test_alu_jmp_mix_dominates(self):
        _, _, classes = run_generator(
            lambda k, r: BuzzerGenerator(k, r, mode="alu_jmp"), n=100
        )
        total = sum(classes.values())
        alu_jmp = sum(
            c for cls, c in classes.items()
            if cls in (InsnClass.ALU, InsnClass.ALU64, InsnClass.JMP,
                       InsnClass.JMP32)
        )
        assert alu_jmp / total >= 0.85  # paper: 88.4%+

    def test_mixed_mode_alternates(self):
        rng = FuzzRng(1)
        kernel = Kernel(PROFILES["bpf-next"]())
        origins = {
            BuzzerGenerator(kernel, rng).generate().origin for _ in range(40)
        }
        assert origins == {"buzzer:random", "buzzer:alu_jmp"}
