"""Feedback-loop behaviours of the campaign driver."""

from __future__ import annotations

import pytest

from repro.fuzz.campaign import Campaign, CampaignConfig


class TestFeedbackLoop:
    def test_mutations_appear_after_corpus_grows(self):
        campaign = Campaign(
            CampaignConfig(tool="bvf", budget=80, seed=21, mutate_rate=0.5)
        )
        result = campaign.run()
        assert len(campaign.corpus) > 0
        # Mutated programs are generated from corpus entries and are
        # tagged with a distinct origin.
        origins = {e.origin for e in campaign.corpus.entries}
        assert "bvf" in origins

    def test_mutate_rate_zero_never_mutates(self):
        campaign = Campaign(
            CampaignConfig(tool="bvf", budget=60, seed=21, mutate_rate=0.0)
        )
        campaign.run()
        assert all(e.origin == "bvf" for e in campaign.corpus.entries)

    def test_coverage_growth_slows(self):
        """Coverage gained in the first quarter exceeds the last."""
        result = Campaign(
            CampaignConfig(tool="bvf", budget=200, seed=8, sample_every=10)
        ).run()
        curve = result.coverage_curve
        quarter = len(curve) // 4
        early = curve[quarter][1] - curve[0][1]
        late = curve[-1][1] - curve[-quarter - 1][1]
        assert early > late

    def test_insn_class_histogram_populated(self):
        result = Campaign(CampaignConfig(tool="bvf", budget=30, seed=2)).run()
        assert sum(result.insn_classes.values()) > 0
        assert 0.0 < result.alu_jmp_fraction() < 1.0

    def test_errno_counter_keys_are_ints(self):
        result = Campaign(CampaignConfig(tool="bvf", budget=60, seed=3)).run()
        assert all(isinstance(k, int) for k in result.reject_errnos)

    def test_findings_carry_programs(self):
        result = Campaign(
            CampaignConfig(tool="bvf", kernel_version="bpf-next",
                           budget=200, seed=4)
        ).run()
        assert result.findings
        for finding in result.findings.values():
            assert finding.iteration >= 0
            assert finding.message
