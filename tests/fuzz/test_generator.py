"""Structured-generator tests: structure, validity, acceptance."""

from __future__ import annotations

import pytest

from repro.errors import BpfError, VerifierReject
from repro.kernel.config import PROFILES
from repro.kernel.syscall import Kernel
from repro.ebpf.insn import Insn
from repro.ebpf.program import BpfProgram, ProgType
from repro.fuzz.generator import GeneratorConfig, StructuredGenerator
from repro.fuzz.rng import FuzzRng


def gen_programs(n, seed=3, config=None, version="bpf-next"):
    rng = FuzzRng(seed)
    out = []
    for _ in range(n):
        kernel = Kernel(PROFILES[version]())
        g = StructuredGenerator(kernel, rng, config)
        out.append((kernel, g.generate()))
    return out


class TestStructure:
    def test_programs_end_with_exit(self):
        for _, gp in gen_programs(30):
            assert gp.insns[-1].is_exit()

    def test_programs_nonempty_and_bounded(self):
        for _, gp in gen_programs(30):
            assert 2 <= len(gp.insns) <= 4096

    def test_ld_imm64_pairs_wellformed(self):
        for _, gp in gen_programs(40):
            i = 0
            while i < len(gp.insns):
                insn = gp.insns[i]
                if insn.is_ld_imm64():
                    assert gp.insns[i + 1].is_filler()
                    i += 2
                else:
                    assert not insn.is_filler(), f"stray filler at {i}"
                    i += 1

    def test_maps_created(self):
        assert any(gp.maps for _, gp in gen_programs(10))

    def test_deterministic_given_seed(self):
        a = [gp.insns for _, gp in gen_programs(5, seed=9)]
        b = [gp.insns for _, gp in gen_programs(5, seed=9)]
        assert a == b

    def test_prog_type_variety(self):
        types = {gp.prog_type for _, gp in gen_programs(80)}
        assert len(types) >= 4


class TestAcceptance:
    def _acceptance(self, config=None, n=150, version="bpf-next"):
        accepted = 0
        for kernel, gp in gen_programs(n, seed=17, config=config,
                                       version=version):
            try:
                kernel.prog_load(
                    BpfProgram(insns=gp.insns, prog_type=gp.prog_type,
                               offload_dev=gp.offload_dev),
                    sanitize=True,
                )
                accepted += 1
            except (VerifierReject, BpfError):
                pass
        return accepted / n

    def test_structured_acceptance_in_band(self):
        """The paper reports 49%; our generator lands in the same
        region (meaningfully above Syzkaller, below Buzzer mode 2)."""
        rate = self._acceptance()
        assert 0.40 <= rate <= 0.80

    def test_structure_ablation_hurts(self):
        structured = self._acceptance()
        flat = self._acceptance(GeneratorConfig(use_structure=False))
        assert flat < structured

    def test_acceptance_on_v5_15(self):
        rate = self._acceptance(version="v5.15")
        assert rate > 0.3


class TestPlans:
    def test_tracing_programs_attach(self):
        plans = [gp.plan for _, gp in gen_programs(120)
                 if gp.prog_type == ProgType.KPROBE]
        assert any(p.attach_tracepoint for p in plans)

    def test_xdp_uses_dispatcher(self):
        plans = [gp for _, gp in gen_programs(200)
                 if gp.prog_type == ProgType.XDP]
        assert any(gp.plan.use_dispatcher for gp in plans)
        assert any(gp.offload_dev for gp in plans)

    def test_map_ops_generated(self):
        assert any(gp.plan.map_ops for _, gp in gen_programs(30))
