"""Oracle classification and differential-triage tests."""

from __future__ import annotations

import errno

import pytest

from repro.errors import (
    BpfError,
    KasanReport,
    KernelPanic,
    LockdepReport,
    NullDerefReport,
    RecursionReport,
    SanitizerReport,
    WarnReport,
)
from repro.kernel.config import PROFILES, Flaw
from repro.ebpf import asm
from repro.ebpf.helpers import HelperId
from repro.ebpf.maps import MapType
from repro.ebpf.opcodes import AluOp, JmpOp, Reg, Size
from repro.ebpf.program import ProgType
from repro.fuzz.oracle import Oracle, replay_kernel
from repro.fuzz.structure import ExecutionPlan, GeneratedProgram
from repro.kernel.syscall import Kernel


def oracle():
    return Oracle(PROFILES["bpf-next"]())


class TestIndicator2Classification:
    def test_trace_printk_lockdep(self):
        report = LockdepReport("recursive", context={"lock": "trace_printk_lock"})
        finding = oracle().classify_report(report, None)
        assert finding.bug_id == Flaw.TRACE_PRINTK_DEADLOCK.value
        assert finding.indicator == "indicator2"
        assert finding.is_verifier_bug

    def test_contention_recursion(self):
        report = RecursionReport("rec", context={"tracepoint": "contention_begin"})
        finding = oracle().classify_report(report, None)
        assert finding.bug_id == Flaw.CONTENTION_BEGIN_LOCK.value

    def test_signal_panic(self):
        report = KernelPanic("bpf_send_signal from NMI")
        finding = oracle().classify_report(report, None)
        assert finding.bug_id == Flaw.SIGNAL_PANIC.value

    def test_ringbuf_lock_component(self):
        report = LockdepReport("sleep", context={"lock": "ringbuf_waitq_lock"})
        finding = oracle().classify_report(report, None)
        assert finding.bug_id == Flaw.IRQ_WORK_LOCK.value
        assert finding.indicator == "component"

    def test_dispatcher_null_deref(self):
        report = NullDerefReport("bpf dispatcher: null program slot executed")
        finding = oracle().classify_report(report, None)
        assert finding.bug_id == Flaw.DISPATCHER_RACE.value

    def test_offload_warn(self):
        report = WarnReport("executing device-offloaded BPF program on the host")
        finding = oracle().classify_report(report, None)
        assert finding.bug_id == Flaw.XDP_DEV_HOST.value

    def test_htab_iter_kasan(self):
        report = KasanReport("htab-iter: slab-out-of-bounds read")
        finding = oracle().classify_report(report, None)
        assert finding.bug_id == Flaw.MAP_BUCKET_ITER.value

    def test_kmemdup_syscall_error(self):
        error = BpfError(errno.ENOMEM, "kmemdup of 9000 bytes failed")
        finding = oracle().classify_syscall_error(error, None)
        assert finding.bug_id == Flaw.KMEMDUP_LIMIT.value

    def test_ordinary_syscall_error_ignored(self):
        error = BpfError(errno.EINVAL, "bad argument")
        assert oracle().classify_syscall_error(error, None) is None


class TestTriage:
    def _cve_program(self, kernel):
        fd = kernel.map_create(MapType.HASH, 8, 16, 4)
        insns = [
            asm.st_mem(Size.DW, Reg.R10, -8, 0),
            *asm.ld_map_fd(Reg.R1, fd),
            asm.mov64_reg(Reg.R2, Reg.R10),
            asm.alu64_imm(AluOp.ADD, Reg.R2, -8),
            asm.call_helper(HelperId.MAP_LOOKUP_ELEM),
            asm.alu64_imm(AluOp.ADD, Reg.R0, 8),
            asm.jmp_imm(JmpOp.JNE, Reg.R0, 0, 2),
            asm.mov64_imm(Reg.R0, 0),
            asm.exit_insn(),
            asm.st_mem(Size.DW, Reg.R0, 0, 1),
            asm.mov64_imm(Reg.R0, 0),
            asm.exit_insn(),
        ]
        return GeneratedProgram(
            insns=insns,
            prog_type=ProgType.SOCKET_FILTER,
            maps=[kernel.map_by_fd(fd)],
            plan=ExecutionPlan(),
        )

    def test_triage_attributes_cve(self):
        config = PROFILES["v5.15"]()
        kernel = Kernel(config)
        gp = self._cve_program(kernel)
        o = Oracle(config)
        report = SanitizerReport("asan", address=8, size=8, is_write=True)
        finding = o.classify_report(report, gp)
        assert finding.bug_id == Flaw.CVE_2022_23222.value
        assert finding.indicator == "indicator1"

    def test_triage_caches_attribution(self):
        config = PROFILES["v5.15"]()
        kernel = Kernel(config)
        gp = self._cve_program(kernel)
        o = Oracle(config)
        report = SanitizerReport("asan", address=8, size=8, is_write=True)
        first = o.classify_report(report, gp)
        second = o.classify_report(report, gp)
        assert first.bug_id == Flaw.CVE_2022_23222.value
        # All active indicator-1 flaws attributed: duplicate short-circuit.
        assert second.bug_id in (Flaw.CVE_2022_23222.value,
                                 "indicator1-duplicate")

    def test_replay_kernel_reproduces_fds(self):
        kernel = Kernel(PROFILES["bpf-next"]())
        fd1 = kernel.map_create(MapType.HASH, 8, 8, 4)
        fd2 = kernel.map_create(MapType.ARRAY, 4, 16, 2)
        gp = GeneratedProgram(
            insns=[],
            prog_type=ProgType.KPROBE,
            maps=[kernel.map_by_fd(fd1), kernel.map_by_fd(fd2)],
            plan=ExecutionPlan(),
        )
        replay = replay_kernel(PROFILES["patched"](), gp)
        assert replay.map_by_fd(fd1).map_type == MapType.HASH
        assert replay.map_by_fd(fd2).map_type == MapType.ARRAY
        assert replay.map_by_fd(fd2).value_size == 16
