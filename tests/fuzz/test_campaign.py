"""Campaign-driver tests (small budgets; the benches run the real ones)."""

from __future__ import annotations

import pytest

from repro.fuzz.campaign import Campaign, CampaignConfig, make_generator
from repro.fuzz.rng import FuzzRng
from repro.kernel.config import PROFILES
from repro.kernel.syscall import Kernel


class TestCampaign:
    def test_basic_run(self):
        result = Campaign(
            CampaignConfig(tool="bvf", budget=40, seed=1)
        ).run()
        assert result.generated == 40
        assert 0 < result.accepted <= 40
        assert result.final_coverage > 0
        assert result.coverage_curve[-1][1] == result.final_coverage

    def test_coverage_curve_monotonic(self):
        result = Campaign(
            CampaignConfig(tool="bvf", budget=50, seed=2, sample_every=5)
        ).run()
        values = [v for _, v in result.coverage_curve]
        assert values == sorted(values)

    def test_deterministic(self):
        a = Campaign(CampaignConfig(tool="bvf", budget=30, seed=7)).run()
        b = Campaign(CampaignConfig(tool="bvf", budget=30, seed=7)).run()
        assert a.accepted == b.accepted
        assert sorted(a.findings) == sorted(b.findings)

    def test_no_findings_on_patched_kernel(self):
        """The no-false-positive guarantee, fleet-scale."""
        result = Campaign(
            CampaignConfig(tool="bvf", kernel_version="patched", budget=120,
                           seed=3)
        ).run()
        assert result.findings == {}

    def test_bvf_finds_bugs_on_flawed_kernel(self):
        result = Campaign(
            CampaignConfig(tool="bvf", kernel_version="bpf-next", budget=250,
                           seed=4)
        ).run()
        assert len(result.findings) >= 3

    def test_baselines_find_nothing_modest_budget(self):
        for tool in ("syzkaller", "buzzer"):
            result = Campaign(
                CampaignConfig(tool=tool, kernel_version="bpf-next",
                               budget=120, seed=5, sanitize=False)
            ).run()
            verifier_bugs = [f for f in result.findings.values()
                             if f.indicator == "indicator1"]
            assert verifier_bugs == []

    def test_corpus_grows(self):
        result = Campaign(CampaignConfig(tool="bvf", budget=60, seed=6)).run()
        assert result.corpus_size > 0

    def test_unknown_tool_rejected(self):
        with pytest.raises(ValueError):
            make_generator("afl", Kernel(PROFILES["patched"]()), FuzzRng(0))

    def test_without_coverage_collection(self):
        result = Campaign(
            CampaignConfig(tool="bvf", budget=25, seed=8,
                           collect_coverage=False)
        ).run()
        assert result.final_coverage == 0
        assert result.generated == 25
