"""Verdict-cache transparency: cached and uncached runs are identical.

The frame-level verdict cache (:mod:`repro.fuzz.verdict`) may change
only its own ``cache.verdict.*`` telemetry.  Everything else — the
verdict sequence, rejection errnos and taxonomy codes, bug findings,
coverage accumulation, corpus growth, and the stripped metrics
snapshot — must be bit-identical to a run with the cache disabled.
Hypothesis drives the campaign-level identity over random seeds; the
unit tests pin the per-load reuse mechanics.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro import obs
from repro.errors import VerifierReject
from repro.ebpf import asm
from repro.ebpf.opcodes import Reg
from repro.ebpf.program import BpfProgram, ProgType
from repro.fuzz.campaign import Campaign, CampaignConfig
from repro.fuzz.coverage import VerifierCoverage
from repro.fuzz.verdict import VerdictCache
from repro.kernel.config import PROFILES
from repro.kernel.syscall import Kernel
from repro.obs.metrics import MetricsRegistry, strip_wall_fields


def _kernel() -> Kernel:
    return Kernel(PROFILES["patched"]())


def _trivial() -> BpfProgram:
    return BpfProgram(
        insns=[asm.mov64_imm(Reg.R0, 0), asm.exit_insn()],
        prog_type=ProgType.KPROBE,
    )


def _rejecting() -> BpfProgram:
    # R2 is read before it is written: EACCES, uninit-reg reason.
    return BpfProgram(
        insns=[asm.mov64_reg(Reg.R0, Reg.R2), asm.exit_insn()],
        prog_type=ProgType.KPROBE,
    )


def _load_twice(cache: VerdictCache, prog_factory, coverage=None):
    """Load the same program through the cache from two fresh kernels."""
    outcomes = []
    for _ in range(2):
        try:
            outcomes.append(cache.load(
                _kernel(), prog_factory(), sanitize=True,
                coverage=coverage, map_specs=(), kinds=frozenset(("basic",)),
            ))
        except VerifierReject as reject:
            outcomes.append(reject)
    return outcomes


class TestVerdictCacheUnit:
    def test_accept_hit_reuses_do_check(self):
        cache = VerdictCache()
        registry = MetricsRegistry()
        token = obs.install(registry, None)
        try:
            first, second = _load_twice(cache, _trivial)
        finally:
            obs.restore(token)
        counters = registry.snapshot()["counters"]
        assert counters["cache.verdict.misses"] == 1
        assert counters["cache.verdict.hits"] == 1
        assert counters["cache.verdict.hits.basic"] == 1
        # The replayed program is bit-identical to the analysed one.
        assert [i.encode() for i in second.xlated] == [
            i.encode() for i in first.xlated
        ]
        assert second.stats == first.stats
        assert second.probe_mem == first.probe_mem
        assert second.alu_limits == first.alu_limits
        assert second.stack_depth == first.stack_depth
        # ...but bound to its own kernel, not the recorded one.
        assert second is not first

    def test_reject_hit_replays_verdict_and_log(self):
        cache = VerdictCache()
        first, second = _load_twice(cache, _rejecting)
        assert isinstance(first, VerifierReject)
        assert isinstance(second, VerifierReject)
        assert second is not first
        assert second.errno == first.errno
        assert second.message == first.message
        assert second.log == first.log

    def test_reject_hit_replays_metrics(self):
        cache = VerdictCache()
        registry = MetricsRegistry()
        token = obs.install(registry, None)
        try:
            _load_twice(cache, _rejecting)
        finally:
            obs.restore(token)
        snap = registry.snapshot()
        assert snap["counters"]["verifier.programs"] == 2
        assert snap["counters"]["verifier.rejected"] == 2
        assert snap["histograms"]["verifier.insns_processed"]["count"] == 2

    def test_hit_replays_coverage_window(self):
        cached_cov = VerifierCoverage()
        cache = VerdictCache()
        _load_twice(cache, _trivial, coverage=cached_cov)
        assert cached_cov.last_new == 0  # duplicate contributed nothing

        plain_cov = VerifierCoverage()
        for _ in range(2):
            with plain_cov.collect():
                _kernel().prog_load(_trivial(), sanitize=True)
        assert cached_cov.snapshot_edges() == plain_cov.snapshot_edges()

    def test_distinct_programs_do_not_collide(self):
        cache = VerdictCache()
        cache.load(_kernel(), _trivial(), sanitize=True, coverage=None,
                   map_specs=(), kinds=frozenset())
        other = BpfProgram(
            insns=[asm.mov64_imm(Reg.R0, 1), asm.exit_insn()],
            prog_type=ProgType.KPROBE,
        )
        verified = cache.load(_kernel(), other, sanitize=True, coverage=None,
                              map_specs=(), kinds=frozenset())
        assert len(cache) == 2
        assert verified.xlated[0].imm == 1

    def test_key_separates_sanitize_modes(self):
        cache = VerdictCache()
        cache.load(_kernel(), _trivial(), sanitize=True, coverage=None,
                   map_specs=(), kinds=frozenset())
        cache.load(_kernel(), _trivial(), sanitize=False, coverage=None,
                   map_specs=(), kinds=frozenset())
        assert len(cache) == 2

    def test_capacity_evicts_oldest(self):
        cache = VerdictCache(capacity=1)
        _load_twice(cache, _trivial)
        try:
            cache.load(_kernel(), _rejecting(), sanitize=True, coverage=None,
                       map_specs=(), kinds=frozenset())
        except VerifierReject:
            pass
        assert len(cache) == 1
        # The trivial program was evicted; loading it again is a miss.
        registry = MetricsRegistry()
        token = obs.install(registry, None)
        try:
            cache.load(_kernel(), _trivial(), sanitize=True, coverage=None,
                       map_specs=(), kinds=frozenset())
        finally:
            obs.restore(token)
        assert registry.snapshot()["counters"]["cache.verdict.misses"] == 1


def _campaign_fingerprint(result) -> tuple:
    """Everything a campaign computes, minus cache telemetry and time."""
    return (
        result.accepted,
        result.generated,
        tuple(sorted(result.reject_errnos.items())),
        tuple(sorted(result.reject_reasons.items())),
        tuple(sorted(result.findings)),
        tuple(sorted(result.frame_accepted.items())),
        tuple(sorted(result.insn_classes.items())),
        result.final_coverage,
        result.corpus_size,
        tuple(result.coverage_curve),
    )


class TestCampaignTransparency:
    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_cached_equals_uncached(self, seed):
        config = CampaignConfig(budget=15, seed=seed, collect_coverage=False)
        cached = Campaign(config).run()
        uncached_campaign = Campaign(config)
        uncached_campaign.verdicts = None
        uncached = uncached_campaign.run()
        assert _campaign_fingerprint(cached) == _campaign_fingerprint(uncached)
        assert strip_wall_fields(cached.metrics) == strip_wall_fields(
            uncached.metrics
        )

    def test_cached_equals_uncached_with_coverage(self):
        config = CampaignConfig(budget=50, seed=7)
        cached = Campaign(config).run()
        uncached_campaign = Campaign(config)
        uncached_campaign.verdicts = None
        uncached = uncached_campaign.run()
        assert _campaign_fingerprint(cached) == _campaign_fingerprint(uncached)
        assert strip_wall_fields(cached.metrics) == strip_wall_fields(
            uncached.metrics
        )
        assert cached.edge_samples == uncached.edge_samples

    def test_cache_disabled_under_invariant_checking(self):
        campaign = Campaign(CampaignConfig(check_invariants=True))
        assert campaign.verdicts is None

    def test_cache_disabled_under_tracing(self, tmp_path):
        campaign = Campaign(
            CampaignConfig(trace_path=str(tmp_path / "trace.jsonl"))
        )
        assert campaign.verdicts is None
