"""Corpus management and coverage-tracer tests."""

from __future__ import annotations

import pytest

from repro.kernel.config import PROFILES
from repro.kernel.syscall import Kernel
from repro.ebpf import asm
from repro.ebpf.maps import MapType
from repro.ebpf.opcodes import Reg
from repro.ebpf.program import BpfProgram, ProgType
from repro.fuzz.corpus import Corpus, MapSpec, specs_of
from repro.fuzz.coverage import CoverageReentryError, VerifierCoverage
from repro.fuzz.rng import FuzzRng
from repro.fuzz.structure import ExecutionPlan, GeneratedProgram


def dummy_gp(kernel=None, n_maps=1):
    kernel = kernel or Kernel(PROFILES["patched"]())
    maps = []
    for _ in range(n_maps):
        fd = kernel.map_create(MapType.HASH, 8, 8, 4)
        maps.append(kernel.map_by_fd(fd))
    return GeneratedProgram(
        insns=[asm.mov64_imm(Reg.R0, 0), asm.exit_insn()],
        prog_type=ProgType.KPROBE,
        maps=maps,
        plan=ExecutionPlan(),
    )


class TestCorpus:
    def test_add_and_pick(self):
        corpus = Corpus()
        corpus.add(dummy_gp(), new_edges=5)
        assert len(corpus) == 1
        entry = corpus.pick(FuzzRng(0))
        assert entry.prog_type == ProgType.KPROBE
        assert entry.map_specs[0].map_type == MapType.HASH

    def test_capacity_eviction_prefers_contributors(self):
        corpus = Corpus(capacity=2)
        corpus.add(dummy_gp(), new_edges=1)
        corpus.add(dummy_gp(), new_edges=10)
        corpus.add(dummy_gp(), new_edges=5)
        assert len(corpus) == 2
        assert sorted(e.new_edges for e in corpus.entries) == [5, 10]

    def test_weak_entry_not_inserted(self):
        corpus = Corpus(capacity=1)
        corpus.add(dummy_gp(), new_edges=10)
        corpus.add(dummy_gp(), new_edges=1)
        assert corpus.entries[0].new_edges == 10

    def test_specs_of(self):
        gp = dummy_gp(n_maps=2)
        specs = specs_of(gp)
        assert specs == (MapSpec(MapType.HASH, 8, 8, 4),) * 2


class TestCoverage:
    def _verify_once(self, cov, insns=None):
        kernel = Kernel(PROFILES["patched"]())
        prog = BpfProgram(
            insns=insns or [asm.mov64_imm(Reg.R0, 0), asm.exit_insn()]
        )
        with cov.collect():
            kernel.prog_load(prog)

    def test_collect_records_edges(self):
        cov = VerifierCoverage()
        self._verify_once(cov)
        assert cov.edge_count > 0
        assert cov.last_new == cov.edge_count

    def test_repeat_contributes_nothing(self):
        cov = VerifierCoverage()
        self._verify_once(cov)
        first = cov.edge_count
        self._verify_once(cov)
        assert cov.edge_count == first
        assert cov.last_new == 0

    def test_new_behaviour_adds_edges(self):
        cov = VerifierCoverage()
        self._verify_once(cov)
        first = cov.edge_count
        self._verify_once(
            cov,
            insns=[
                asm.st_mem(asm.Size.DW, Reg.R10, -8, 1),
                asm.ldx_mem(asm.Size.DW, Reg.R0, Reg.R10, -8),
                asm.exit_insn(),
            ],
        )
        assert cov.edge_count > first
        assert cov.last_new > 0

    def test_tracing_scoped_to_verifier(self):
        cov = VerifierCoverage()
        with cov.collect():
            sum(range(1000))  # non-verifier code
        assert cov.edge_count == 0

    def test_nested_collect_raises(self):
        """Re-entry would clobber the active window; it must fail loudly."""
        cov = VerifierCoverage()
        with cov.collect():
            with pytest.raises(CoverageReentryError):
                with cov.collect():
                    pass  # pragma: no cover

    def test_collect_usable_after_reentry_error(self):
        cov = VerifierCoverage()
        with cov.collect():
            with pytest.raises(CoverageReentryError):
                cov.collect().__enter__()
        self._verify_once(cov)
        assert cov.edge_count > 0

    def test_backend_selection(self):
        import sys

        assert VerifierCoverage().backend_name in (
            "ctrace",
            "settrace",
            "monitoring",
        )
        assert VerifierCoverage(backend="settrace").backend_name == "settrace"
        if hasattr(sys, "monitoring"):
            cov = VerifierCoverage(backend="monitoring")
            assert cov.backend_name == "monitoring"
            self._verify_once(cov)
            assert cov.edge_count > 0
        else:
            with pytest.raises(ValueError):
                VerifierCoverage(backend="monitoring")
        with pytest.raises(ValueError):
            VerifierCoverage(backend="dtrace")

    def test_ctrace_settrace_parity(self):
        """The C tracer must report bit-identical edges to settrace."""
        from repro.fuzz.coverage import _load_ctrace

        if not _load_ctrace():
            pytest.skip("C tracer extension unavailable")
        fast = VerifierCoverage(backend="ctrace")
        slow = VerifierCoverage(backend="settrace")
        for cov in (fast, slow):
            self._verify_once(cov)
        assert fast.snapshot_edges() == slow.snapshot_edges()
        assert fast.edge_count > 0

    def test_replay_marks_new_edges(self):
        cov = VerifierCoverage()
        self._verify_once(cov)
        window = cov.snapshot_edges()
        fresh = VerifierCoverage()
        fresh.replay(window)
        assert fresh.last_new == len(window)
        assert fresh.snapshot_edges() == window
        fresh.replay(window)  # replaying the same window adds nothing
        assert fresh.last_new == 0

    def test_snapshot_edges_is_picklable_copy(self):
        import pickle

        cov = VerifierCoverage()
        self._verify_once(cov)
        snap = cov.snapshot_edges()
        assert snap == frozenset(cov.edges)
        assert pickle.loads(pickle.dumps(snap)) == snap
        self._verify_once(
            cov,
            insns=[
                asm.st_mem(asm.Size.DW, Reg.R10, -8, 1),
                asm.ldx_mem(asm.Size.DW, Reg.R0, Reg.R10, -8),
                asm.exit_insn(),
            ],
        )
        assert snap < cov.snapshot_edges()  # snapshot didn't alias

    def test_merge_counts_new_edges_only(self):
        a = VerifierCoverage()
        b = VerifierCoverage()
        self._verify_once(a)
        self._verify_once(b)
        self._verify_once(
            b,
            insns=[
                asm.st_mem(asm.Size.DW, Reg.R10, -8, 1),
                asm.ldx_mem(asm.Size.DW, Reg.R0, Reg.R10, -8),
                asm.exit_insn(),
            ],
        )
        extra = b.edge_count - a.edge_count
        assert extra > 0
        assert a.merge(b) == extra
        assert a.edge_count == b.edge_count
        assert a.merge(b.snapshot_edges()) == 0  # iterable form, idempotent

    def test_edge_keys_stable_across_processes(self):
        """Same verification in a child process yields the same edges.

        This is what makes unioning shard edge sets in the parallel
        campaign meaningful: keys must not depend on per-process hash
        salting or allocation order.
        """
        import multiprocessing

        cov = VerifierCoverage()
        self._verify_once(cov)
        ctx = multiprocessing.get_context(
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        with ctx.Pool(1) as pool:
            child = pool.apply(_collect_edges_in_child)
        assert child == cov.snapshot_edges()


def _collect_edges_in_child():
    kernel = Kernel(PROFILES["patched"]())
    cov = VerifierCoverage()
    with cov.collect():
        kernel.prog_load(
            BpfProgram(insns=[asm.mov64_imm(Reg.R0, 0), asm.exit_insn()])
        )
    return cov.snapshot_edges()
