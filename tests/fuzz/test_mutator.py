"""Mutation-operator tests."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.ebpf import asm
from repro.ebpf.opcodes import AluOp, JmpOp, Reg, Size
from repro.fuzz.mutator import mutate, _dup_adjacent, _tweak_imm, _flip_alu_op
from repro.fuzz.rng import FuzzRng


def sample_prog():
    return [
        asm.mov64_imm(Reg.R0, 5),
        *asm.ld_imm64(Reg.R1, 0xABCDEF),
        asm.alu64_imm(AluOp.ADD, Reg.R0, 3),
        asm.jmp_imm(JmpOp.JGT, Reg.R0, 10, 1),
        asm.st_mem(Size.DW, Reg.R10, -8, 7),
        asm.exit_insn(),
    ]


class TestOperators:
    def test_dup_lengthens_by_one(self):
        rng = FuzzRng(1)
        out = _dup_adjacent(sample_prog(), rng)
        assert len(out) == len(sample_prog()) + 1

    def test_dup_preserves_jump_targets(self):
        rng = FuzzRng(2)
        prog = sample_prog()
        out = _dup_adjacent(prog, rng)
        jmp = next(i for i in out if i.is_cond_jmp())
        jmp_idx = out.index(jmp)
        target = out[jmp_idx + jmp.off + 1]
        assert target.is_exit()  # still lands on exit

    def test_tweak_imm_changes_one_imm(self):
        rng = FuzzRng(3)
        prog = sample_prog()
        out = _tweak_imm(prog, rng)
        assert len(out) == len(prog)
        diffs = [i for i, (a, b) in enumerate(zip(prog, out)) if a != b]
        assert len(diffs) <= 1

    def test_flip_alu_op(self):
        rng = FuzzRng(4)
        prog = sample_prog()
        out = _flip_alu_op(prog, rng)
        changed = [(a, b) for a, b in zip(prog, out) if a != b]
        assert len(changed) == 1
        old, new = changed[0]
        assert old.insn_class == new.insn_class
        assert old.alu_op != new.alu_op

    def test_mutate_never_breaks_ld_imm64_pairing(self):
        rng = FuzzRng(5)
        for _ in range(50):
            out = mutate(sample_prog(), rng, rounds=3)
            i = 0
            while i < len(out):
                if out[i].is_ld_imm64():
                    assert out[i + 1].is_filler()
                    i += 2
                else:
                    assert not out[i].is_filler()
                    i += 1

    @given(st.integers(min_value=0, max_value=10000))
    def test_mutate_total(self, seed):
        rng = FuzzRng(seed)
        out = mutate(sample_prog(), rng)
        assert len(out) >= len(sample_prog())
