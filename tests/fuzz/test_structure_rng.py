"""GenState / ExecutionPlan / FuzzRng unit tests."""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, strategies as st

from repro.ebpf.program import ProgType
from repro.fuzz.rng import FuzzRng, INTERESTING_U64
from repro.fuzz.structure import GenState, RegTag


class TestRegTag:
    def test_pointer_classification(self):
        assert RegTag(kind="map_value").is_pointer()
        assert RegTag(kind="stack").is_pointer()
        assert not RegTag(kind="scalar").is_pointer()
        assert RegTag(kind="const").is_scalarish()
        assert not RegTag(kind="uninit").usable()
        assert not RegTag(kind="poison").usable()

    def test_clone_independent(self):
        tag = RegTag(kind="const", const=5)
        copy = tag.clone()
        copy.const = 7
        assert tag.const == 5


class TestGenState:
    def _state(self):
        return GenState(prog_type=ProgType.KPROBE)

    def test_initial_tags_uninit(self):
        st_ = self._state()
        assert st_.regs_with("uninit") == list(range(10))

    def test_regs_with_filters(self):
        st_ = self._state()
        st_.set_tag(3, RegTag(kind="map_value"))
        st_.set_tag(7, RegTag(kind="ctx"))
        assert st_.regs_with("map_value") == [3]
        assert st_.regs_with("map_value", "ctx") == [3, 7]

    def test_scratch_excludes_pointers(self):
        st_ = self._state()
        st_.set_tag(2, RegTag(kind="btf"))
        st_.set_tag(4, RegTag(kind="scalar"))
        scratch = st_.scratch_regs()
        assert 2 not in scratch
        assert 4 in scratch

    def test_clobber_caller_saved(self):
        st_ = self._state()
        for r in range(10):
            st_.set_tag(r, RegTag(kind="scalar"))
        st_.clobber_caller_saved()
        assert st_.regs_with("uninit") == list(range(6))
        assert st_.regs_with("scalar") == [6, 7, 8, 9]

    def test_merge_poisons_divergent(self):
        st_ = self._state()
        st_.set_tag(1, RegTag(kind="map_value"))
        before = st_.snapshot_tags()
        st_.set_tag(1, RegTag(kind="scalar"))  # body changed the type
        st_.merge_tags(before)
        assert st_.tag(1).kind == "poison"

    def test_merge_keeps_matching(self):
        st_ = self._state()
        st_.set_tag(1, RegTag(kind="ctx"))
        before = st_.snapshot_tags()
        st_.merge_tags(before)
        assert st_.tag(1).kind == "ctx"

    def test_merge_joins_scalarish(self):
        st_ = self._state()
        st_.set_tag(1, RegTag(kind="const", const=5))
        before = st_.snapshot_tags()
        st_.set_tag(1, RegTag(kind="scalar"))
        st_.merge_tags(before)
        assert st_.tag(1).kind == "scalar"  # joined, not poisoned


class TestFuzzRng:
    def test_deterministic(self):
        a, b = FuzzRng(3), FuzzRng(3)
        assert [a.fuzz_u64() for _ in range(20)] == [
            b.fuzz_u64() for _ in range(20)
        ]

    def test_chance_extremes(self):
        rng = FuzzRng(0)
        assert not any(rng.chance(0.0) for _ in range(100))
        assert all(rng.chance(1.0) for _ in range(100))

    def test_interesting_values_from_table(self):
        rng = FuzzRng(1)
        for _ in range(50):
            assert rng.interesting_u64() in INTERESTING_U64

    @given(st.integers(min_value=0, max_value=1000),
           st.integers(min_value=0, max_value=1000))
    def test_fuzz_int_in_range(self, a, b):
        lo, hi = min(a, b), max(a, b)
        rng = FuzzRng(a * 1001 + b)
        for _ in range(10):
            assert lo <= rng.fuzz_int(lo, hi) <= hi

    def test_fuzz_int_hits_boundaries(self):
        rng = FuzzRng(2)
        values = Counter(rng.fuzz_int(0, 100) for _ in range(300))
        assert values[0] > 20
        assert values[100] > 20

    def test_fuzz_imm32_signed_range(self):
        rng = FuzzRng(4)
        for _ in range(200):
            value = rng.fuzz_imm32()
            assert -(1 << 31) <= value < (1 << 31)

    def test_pick_weighted_respects_weights(self):
        rng = FuzzRng(5)
        picks = Counter(
            rng.pick_weighted(["a", "b"], [99, 1]) for _ in range(500)
        )
        assert picks["a"] > picks["b"] * 5
