"""Verifier main-loop behaviours: structure checks, pruning, limits,
subprograms, infinite loops, statistics, and errno fidelity."""

from __future__ import annotations

import errno

import pytest

from repro.errors import VerifierReject
from repro.kernel.config import PROFILES
from repro.kernel.syscall import Kernel
from repro.ebpf import asm
from repro.ebpf.insn import Insn
from repro.ebpf.opcodes import AluOp, JmpOp, Reg, Size
from repro.ebpf.program import BpfProgram, ProgType
from repro.verifier.core import MAX_USER_INSNS


def load(kernel, insns, prog_type=ProgType.SOCKET_FILTER):
    return kernel.prog_load(BpfProgram(insns=list(insns), prog_type=prog_type))


def reject(kernel, insns, prog_type=ProgType.SOCKET_FILTER):
    with pytest.raises(VerifierReject) as exc:
        load(kernel, insns, prog_type)
    return exc.value


class TestStructuralChecks:
    def test_empty_program(self, patched_kernel):
        exc = reject(patched_kernel, [])
        assert exc.errno == errno.EINVAL

    def test_oversized_program(self, patched_kernel):
        insns = [asm.mov64_imm(Reg.R0, 0)] * (MAX_USER_INSNS + 1)
        exc = reject(patched_kernel, insns + [asm.exit_insn()])
        assert exc.errno == errno.E2BIG

    def test_unknown_opcode(self, patched_kernel):
        exc = reject(patched_kernel, [Insn(opcode=0x8F), asm.exit_insn()])
        assert exc.errno == errno.EINVAL

    def test_reserved_field_abuse(self, patched_kernel):
        bad_exit = Insn(opcode=asm.exit_insn().opcode, imm=5)
        exc = reject(patched_kernel, [asm.mov64_imm(Reg.R0, 0), bad_exit])
        assert "reserved" in exc.message

    def test_last_insn_must_exit(self, patched_kernel):
        exc = reject(patched_kernel, [asm.mov64_imm(Reg.R0, 0)])
        assert "exit" in exc.message

    def test_bad_map_fd(self, patched_kernel):
        exc = reject(
            patched_kernel,
            [*asm.ld_map_fd(Reg.R1, 77), asm.mov64_imm(Reg.R0, 0),
             asm.exit_insn()],
        )
        assert exc.errno == errno.EBADF

    def test_bad_btf_id(self, patched_kernel):
        exc = reject(
            patched_kernel,
            [*asm.ld_btf_id(Reg.R1, 9999), asm.mov64_imm(Reg.R0, 0),
             asm.exit_insn()],
        )
        assert exc.errno == errno.EINVAL

    def test_btf_gated_by_config(self):
        kernel = Kernel(PROFILES["patched"]().__class__(
            version="nobtf", has_btf_access=False))
        exc = reject(
            kernel,
            [*asm.ld_btf_id(Reg.R1, 1), asm.mov64_imm(Reg.R0, 0),
             asm.exit_insn()],
        )
        assert "not supported" in exc.message


class TestLoops:
    def test_infinite_ja_rejected(self, patched_kernel):
        exc = reject(patched_kernel, [asm.ja(-1), asm.mov64_imm(Reg.R0, 0),
                                      asm.exit_insn()])
        assert "infinite loop" in exc.message

    def test_no_progress_loop_rejected(self, patched_kernel):
        exc = reject(
            patched_kernel,
            [
                asm.mov64_imm(Reg.R1, 0),
                asm.alu64_imm(AluOp.ADD, Reg.R1, 0),
                asm.jmp_imm(JmpOp.JLT, Reg.R1, 5, -2),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
        )
        assert "infinite loop" in exc.message

    def test_progressing_loop_accepted(self, patched_kernel):
        load(
            patched_kernel,
            [
                asm.mov64_imm(Reg.R1, 0),
                asm.alu64_imm(AluOp.ADD, Reg.R1, 1),
                asm.jmp_imm(JmpOp.JLT, Reg.R1, 100, -2),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
        )

    def test_complexity_budget(self, patched_kernel):
        # A big bounded loop exhausts the scaled-down processing budget.
        exc = reject(
            patched_kernel,
            [
                asm.mov64_imm(Reg.R1, 0),
                asm.alu64_imm(AluOp.ADD, Reg.R1, 1),
                asm.jmp_imm(JmpOp.JLT, Reg.R1, 1 << 20, -2),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
        )
        assert exc.errno == errno.E2BIG


class TestSubprograms:
    def test_call_depth_limit(self, patched_kernel):
        # Self-recursive subprogram exceeds the frame limit.
        exc = reject(
            patched_kernel,
            [
                asm.mov64_imm(Reg.R1, 0),
                asm.call_subprog(1),
                asm.exit_insn(),
                asm.call_subprog(-1),  # calls itself -> depth blowup
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
        )
        assert "too deep" in exc.message or exc.errno == errno.E2BIG

    def test_r6_r9_preserved_across_call(self, patched_kernel):
        load(
            patched_kernel,
            [
                asm.mov64_imm(Reg.R6, 1),
                asm.mov64_imm(Reg.R1, 0),
                asm.call_subprog(3),
                asm.alu64_reg(AluOp.ADD, Reg.R6, Reg.R0),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
                asm.mov64_imm(Reg.R0, 2),
                asm.exit_insn(),
            ],
        )

    def test_r1_r5_dead_after_call(self, patched_kernel):
        exc = reject(
            patched_kernel,
            [
                asm.mov64_imm(Reg.R1, 1),
                asm.call_subprog(3),
                asm.mov64_reg(Reg.R0, Reg.R1),  # clobbered!
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
                asm.mov64_imm(Reg.R0, 2),
                asm.exit_insn(),
            ],
        )
        assert "!read_ok" in exc.message


class TestPruning:
    def test_diamond_converges(self, patched_kernel):
        """Both sides of a branch produce the same state: the join is
        verified once (states_pruned > 0)."""
        verified = load(
            patched_kernel,
            [
                asm.ldx_mem(Size.W, Reg.R2, Reg.R1, 0),
                asm.jmp_imm(JmpOp.JEQ, Reg.R2, 0, 3),
                asm.mov64_imm(Reg.R3, 1),
                asm.mov64_imm(Reg.R2, 1),  # erase the branch refinement
                asm.ja(2),
                asm.mov64_imm(Reg.R3, 1),
                asm.mov64_imm(Reg.R2, 1),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
        )
        assert verified.stats["states_pruned"] >= 1

    def test_stats_exported(self, patched_kernel):
        verified = load(
            patched_kernel, [asm.mov64_imm(Reg.R0, 0), asm.exit_insn()]
        )
        stats = verified.stats
        assert stats["insns_processed"] >= 2
        assert stats["orig_len"] == 2
        assert stats["xlated_len"] == 2


class TestDeadCode:
    def test_always_taken_branch_skips_dead_side(self, patched_kernel):
        # The dead side contains an illegal access; the kernel verifier
        # doesn't analyse statically-dead paths of decided branches.
        load(
            patched_kernel,
            [
                asm.mov64_imm(Reg.R1, 5),
                asm.jmp_imm(JmpOp.JEQ, Reg.R1, 5, 1),
                asm.ldx_mem(Size.DW, Reg.R0, Reg.R9, 0),  # dead, illegal
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
        )

    def test_impossible_refined_branch_dropped(self, patched_kernel):
        load(
            patched_kernel,
            [
                asm.ldx_mem(Size.W, Reg.R2, Reg.R1, 0),
                asm.jmp_imm(JmpOp.JGT, Reg.R2, 10, 2),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
                # here r2 > 10; a second test r2 < 5 is impossible and
                # its taken side (with the illegal access) is dropped.
                asm.jmp_imm(JmpOp.JLT, Reg.R2, 5, 1),
                asm.ja(1),
                asm.ldx_mem(Size.DW, Reg.R0, Reg.R9, 0),  # unreachable
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
        )
