"""The big verifier integration test: the whole self-test corpus.

Every program in the corpus must produce exactly its annotated verdict
on a fully-fixed kernel, and every *accepted* program must execute
without raising any kernel report — raw or sanitized — proving the
oracle produces no false positives on correct kernels.
"""

from __future__ import annotations

import pytest

from repro.errors import BpfError, VerifierReject
from repro.kernel.config import PROFILES
from repro.kernel.syscall import Kernel
from repro.runtime.executor import Executor
from repro.testsuite import all_selftests_extended

_TESTS = all_selftests_extended()


def _ids():
    return [t.name for t in _TESTS]


@pytest.mark.parametrize("selftest", _TESTS, ids=_ids())
def test_verdict_matches(selftest):
    kernel = Kernel(PROFILES["patched"]())
    prog = selftest.build(kernel)
    try:
        kernel.prog_load(prog)
        verdict = "accept"
    except (VerifierReject, BpfError):
        verdict = "reject"
    assert verdict == selftest.expect


@pytest.mark.parametrize(
    "selftest",
    [t for t in _TESTS if t.expect == "accept"],
    ids=[t.name for t in _TESTS if t.expect == "accept"],
)
def test_accepted_programs_run_clean(selftest):
    """Raw execution of accepted programs never crashes the kernel,
    and semantic self-tests compute their pinned result."""
    kernel = Kernel(PROFILES["patched"]())
    prog = selftest.build(kernel)
    verified = kernel.prog_load(prog)
    result = Executor(kernel).run(verified)
    assert result.report is None, f"unexpected report: {result.report}"
    if selftest.expected_r0 is not None:
        assert result.r0 == selftest.expected_r0, (
            f"{selftest.name}: R0={result.r0:#x}, "
            f"expected {selftest.expected_r0:#x}"
        )


@pytest.mark.parametrize(
    "selftest",
    [t for t in _TESTS if t.expect == "accept" and t.has_memory_access],
    ids=[t.name for t in _TESTS if t.expect == "accept" and t.has_memory_access],
)
def test_sanitized_programs_run_clean(selftest):
    """Sanitation must not introduce false positives (Section 6.5)."""
    kernel = Kernel(PROFILES["patched"]())
    prog = selftest.build(kernel)
    verified = kernel.prog_load(prog, sanitize=True)
    assert verified.sanitized
    result = Executor(kernel).run(verified)
    assert result.report is None, f"sanitizer false positive: {result.report}"


@pytest.mark.parametrize(
    "selftest",
    [t for t in _TESTS if t.expect == "accept" and t.has_memory_access],
    ids=[t.name for t in _TESTS if t.expect == "accept" and t.has_memory_access],
)
def test_sanitized_and_raw_agree(selftest):
    """Instrumentation must not change program semantics (R0)."""
    kernel_raw = Kernel(PROFILES["patched"]())
    raw = kernel_raw.prog_load(selftest.build(kernel_raw))
    kernel_san = Kernel(PROFILES["patched"]())
    san = kernel_san.prog_load(selftest.build(kernel_san), sanitize=True)
    r_raw = Executor(kernel_raw).run(raw)
    r_san = Executor(kernel_san).run(san)
    assert r_raw.r0 == r_san.r0
