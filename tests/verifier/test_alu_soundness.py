"""Abstract-domain soundness of the verifier's scalar ALU tracking.

The fundamental property connecting the verifier to the runtime: if a
concrete value is contained in a register's abstract state, then after
any ALU operation the concrete result (computed with exact eBPF
semantics) must be contained in the abstract result.  A violation here
would be a genuine verifier bug of exactly the class the paper hunts.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.ebpf.opcodes import AluOp
from repro.verifier.checks import scalar_alu
from repro.verifier.state import RegState, s64
from repro.verifier.tnum import Tnum

U64 = (1 << 64) - 1
U32 = (1 << 32) - 1

_OPS = (
    AluOp.ADD,
    AluOp.SUB,
    AluOp.MUL,
    AluOp.DIV,
    AluOp.MOD,
    AluOp.OR,
    AluOp.AND,
    AluOp.XOR,
    AluOp.LSH,
    AluOp.RSH,
    AluOp.ARSH,
)


def _concrete(op: AluOp, a: int, b: int, is64: bool) -> int:
    """Exact eBPF ALU semantics (mirrors the interpreter)."""
    mask = U64 if is64 else U32
    bits = 64 if is64 else 32
    a &= mask
    b &= mask
    if op == AluOp.ADD:
        return (a + b) & mask
    if op == AluOp.SUB:
        return (a - b) & mask
    if op == AluOp.MUL:
        return (a * b) & mask
    if op == AluOp.DIV:
        return (a // b if b else 0) & mask
    if op == AluOp.MOD:
        return (a % b if b else a) & mask
    if op == AluOp.OR:
        return a | b
    if op == AluOp.AND:
        return a & b
    if op == AluOp.XOR:
        return a ^ b
    shift = b & (bits - 1)
    if op == AluOp.LSH:
        return (a << shift) & mask
    if op == AluOp.RSH:
        return a >> shift
    # ARSH
    signed = a - (1 << bits) if a >= (1 << (bits - 1)) else a
    return (signed >> shift) & mask


@st.composite
def abstract_with_member(draw):
    """A scalar RegState plus a concrete member value."""
    mask = draw(st.integers(min_value=0, max_value=U64))
    known = draw(st.integers(min_value=0, max_value=U64)) & ~mask
    member = (known | (draw(st.integers(min_value=0, max_value=U64)) & mask)) & U64
    reg = RegState.unknown_scalar()
    reg.var_off = Tnum(known & U64, mask & U64)
    reg.sync_bounds()
    # Optionally tighten the unsigned bounds around the member.
    if draw(st.booleans()):
        slack = draw(st.integers(min_value=0, max_value=1 << 32))
        reg.umin = max(reg.umin, member - min(member, slack))
        reg.umax = min(reg.umax, member + min(U64 - member, slack))
        reg.sync_bounds()
    return reg, member


def _contains(reg: RegState, value: int) -> bool:
    value &= U64
    if not (reg.umin <= value <= reg.umax):
        return False
    if not (reg.smin <= s64(value) <= reg.smax):
        return False
    return reg.var_off.contains(value)


class TestScalarAluSoundness:
    @settings(max_examples=300, deadline=None)
    @given(
        st.sampled_from(_OPS),
        abstract_with_member(),
        abstract_with_member(),
        st.booleans(),
    )
    def test_concrete_result_contained(self, op, a, b, is64):
        reg_a, val_a = a
        reg_b, val_b = b
        dst = reg_a.clone()
        scalar_alu(None, dst, reg_b.clone(), op, is64)
        expected = _concrete(op, val_a, val_b, is64)
        assert dst.is_scalar()
        assert _contains(dst, expected), (
            f"{op.name}({val_a:#x}, {val_b:#x}) -> {expected:#x} "
            f"escaped umin={dst.umin:#x} umax={dst.umax:#x} "
            f"smin={dst.smin} smax={dst.smax} var={dst.var_off}"
        )

    @settings(max_examples=150, deadline=None)
    @given(
        st.sampled_from(_OPS),
        st.integers(min_value=0, max_value=U64),
        st.integers(min_value=0, max_value=U64),
        st.booleans(),
    )
    def test_constants_stay_constant(self, op, a, b, is64):
        """Constant inputs must produce exactly the concrete output.

        (DIV/MOD with huge operands and shifts >= bits go through
        mark_unknown in the verifier; skip the cases it deliberately
        widens.)
        """
        if op in (AluOp.LSH, AluOp.RSH, AluOp.ARSH) and (b & 63) != b:
            return
        if op in (AluOp.LSH, AluOp.RSH, AluOp.ARSH) and b >= (64 if is64 else 32):
            return
        dst = RegState.const_scalar(a)
        src = RegState.const_scalar(b)
        scalar_alu(None, dst, src, op, is64)
        expected = _concrete(op, a, b, is64)
        assert _contains(dst, expected)

    @settings(max_examples=100, deadline=None)
    @given(abstract_with_member(), st.booleans())
    def test_neg_soundness(self, a, is64):
        reg, val = a
        dst = reg.clone()
        scalar_alu(None, dst, RegState.const_scalar(0), AluOp.NEG, is64)
        mask = U64 if is64 else U32
        expected = (-(val & mask)) & mask
        assert _contains(dst, expected)
