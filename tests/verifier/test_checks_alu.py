"""ALU verification: scalar bounds tracking and pointer rules."""

from __future__ import annotations

import pytest

from repro.errors import VerifierReject
from repro.kernel.config import PROFILES
from repro.kernel.syscall import Kernel
from repro.ebpf import asm
from repro.ebpf.maps import MapType
from repro.ebpf.helpers import HelperId
from repro.ebpf.opcodes import AluOp, JmpOp, Reg, Size
from repro.ebpf.program import BpfProgram, ProgType


def load(kernel, insns, prog_type=ProgType.SOCKET_FILTER, sanitize=False):
    return kernel.prog_load(
        BpfProgram(insns=list(insns), prog_type=prog_type), sanitize=sanitize
    )


def reject_msg(kernel, insns, prog_type=ProgType.SOCKET_FILTER):
    with pytest.raises(VerifierReject) as exc:
        load(kernel, insns, prog_type)
    return exc.value.message


class TestScalarTracking:
    def test_const_fold_through_alu(self, patched_kernel):
        """Constant arithmetic must track precisely: the verifier can
        prove the bounded index below is in range."""
        fd = patched_kernel.map_create(MapType.HASH, 8, 16, 4)
        load(
            patched_kernel,
            [
                asm.st_mem(Size.DW, Reg.R10, -8, 0),
                *asm.ld_map_fd(Reg.R1, fd),
                asm.mov64_reg(Reg.R2, Reg.R10),
                asm.alu64_imm(AluOp.ADD, Reg.R2, -8),
                asm.call_helper(HelperId.MAP_LOOKUP_ELEM),
                asm.jmp_imm(JmpOp.JNE, Reg.R0, 0, 2),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
                asm.mov64_imm(Reg.R1, 3),
                asm.alu64_imm(AluOp.MUL, Reg.R1, 4),  # 12
                asm.alu64_imm(AluOp.SUB, Reg.R1, 4),  # 8
                asm.alu64_reg(AluOp.ADD, Reg.R0, Reg.R1),
                asm.ldx_mem(Size.DW, Reg.R2, Reg.R0, 0),  # [8..16) ok
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
        )

    def test_and_masking_bounds(self, patched_kernel):
        fd = patched_kernel.map_create(MapType.HASH, 8, 16, 4)
        # idx = unknown & 7 -> [0, 7]; access of 8 bytes at idx ok.
        load(
            patched_kernel,
            [
                asm.st_mem(Size.DW, Reg.R10, -8, 0),
                *asm.ld_map_fd(Reg.R1, fd),
                asm.mov64_reg(Reg.R2, Reg.R10),
                asm.alu64_imm(AluOp.ADD, Reg.R2, -8),
                asm.call_helper(HelperId.MAP_LOOKUP_ELEM),
                asm.jmp_imm(JmpOp.JNE, Reg.R0, 0, 2),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
                asm.call_helper(HelperId.GET_PRANDOM_U32),
                asm.mov64_reg(Reg.R1, Reg.R0),
                asm.alu64_imm(AluOp.AND, Reg.R1, 7),
                # reload value ptr
                asm.st_mem(Size.DW, Reg.R10, -8, 0),
                *asm.ld_map_fd(Reg.R6, fd),
                asm.mov64_reg(Reg.R7, Reg.R1),
                asm.mov64_reg(Reg.R1, Reg.R6),
                asm.mov64_reg(Reg.R2, Reg.R10),
                asm.alu64_imm(AluOp.ADD, Reg.R2, -8),
                asm.call_helper(HelperId.MAP_LOOKUP_ELEM),
                asm.jmp_imm(JmpOp.JNE, Reg.R0, 0, 2),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
                asm.alu64_reg(AluOp.ADD, Reg.R0, Reg.R7),
                asm.ldx_mem(Size.DW, Reg.R3, Reg.R0, 0),  # max 7+8 <= 16
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
        )

    def test_unbounded_index_rejected(self, patched_kernel):
        fd = patched_kernel.map_create(MapType.HASH, 8, 16, 4)
        msg = reject_msg(
            patched_kernel,
            [
                asm.st_mem(Size.DW, Reg.R10, -8, 0),
                *asm.ld_map_fd(Reg.R1, fd),
                asm.mov64_reg(Reg.R2, Reg.R10),
                asm.alu64_imm(AluOp.ADD, Reg.R2, -8),
                asm.call_helper(HelperId.MAP_LOOKUP_ELEM),
                asm.jmp_imm(JmpOp.JNE, Reg.R0, 0, 2),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
                asm.call_helper(HelperId.GET_PRANDOM_U32),
                asm.mov64_reg(Reg.R6, Reg.R0),
                # reload and add the *unbounded* random value
                asm.st_mem(Size.DW, Reg.R10, -8, 0),
                *asm.ld_map_fd(Reg.R1, fd),
                asm.mov64_reg(Reg.R2, Reg.R10),
                asm.alu64_imm(AluOp.ADD, Reg.R2, -8),
                asm.call_helper(HelperId.MAP_LOOKUP_ELEM),
                asm.jmp_imm(JmpOp.JNE, Reg.R0, 0, 2),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
                asm.alu64_reg(AluOp.ADD, Reg.R0, Reg.R6),
                asm.ldx_mem(Size.DW, Reg.R3, Reg.R0, 0),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
        )
        assert "invalid access to map value" in msg

    def test_alu32_zero_extends(self, patched_kernel):
        # mov32 of a negative value leaves a small positive 32-bit value.
        load(
            patched_kernel,
            [
                asm.mov64_imm(Reg.R1, -1),
                asm.mov32_reg(Reg.R1, Reg.R1),  # r1 = 0xFFFFFFFF
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
        )


class TestAluRejections:
    def test_write_to_fp(self, patched_kernel):
        msg = reject_msg(patched_kernel, [asm.mov64_imm(Reg.R10, 0),
                                          asm.exit_insn()])
        assert "frame pointer" in msg

    def test_uninit_source(self, patched_kernel):
        msg = reject_msg(
            patched_kernel,
            [asm.mov64_reg(Reg.R0, Reg.R5), asm.exit_insn()],
        )
        assert "!read_ok" in msg

    def test_uninit_dst(self, patched_kernel):
        msg = reject_msg(
            patched_kernel,
            [asm.alu64_imm(AluOp.ADD, Reg.R3, 1), asm.mov64_imm(Reg.R0, 0),
             asm.exit_insn()],
        )
        assert "!read_ok" in msg

    def test_partial_pointer_copy(self, patched_kernel):
        msg = reject_msg(
            patched_kernel,
            [asm.mov32_reg(Reg.R1, Reg.R10), asm.mov64_imm(Reg.R0, 0),
             asm.exit_insn()],
        )
        assert "partial copy of pointer" in msg

    def test_pointer_pointer_add(self, patched_kernel):
        msg = reject_msg(
            patched_kernel,
            [
                asm.mov64_reg(Reg.R1, Reg.R10),
                asm.alu64_reg(AluOp.ADD, Reg.R1, Reg.R10),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
        )
        assert "between pointers" in msg

    def test_pointer_mul_prohibited(self, patched_kernel):
        msg = reject_msg(
            patched_kernel,
            [
                asm.mov64_reg(Reg.R1, Reg.R10),
                asm.alu64_imm(AluOp.MUL, Reg.R1, 2),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
        )
        assert "MUL" in msg

    def test_32bit_pointer_arith_prohibited(self, patched_kernel):
        msg = reject_msg(
            patched_kernel,
            [
                asm.mov64_reg(Reg.R1, Reg.R10),
                asm.alu32_imm(AluOp.ADD, Reg.R1, -8),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
        )
        assert "32-bit pointer arithmetic" in msg

    def test_pointer_neg_prohibited(self, patched_kernel):
        msg = reject_msg(
            patched_kernel,
            [
                asm.mov64_reg(Reg.R1, Reg.R10),
                asm.neg64(Reg.R1),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
        )
        assert "negation" in msg

    def test_ctx_variable_offset_prohibited(self, patched_kernel):
        msg = reject_msg(
            patched_kernel,
            [
                asm.mov64_reg(Reg.R6, Reg.R1),  # save ctx across the call
                asm.call_helper(HelperId.GET_PRANDOM_U32),
                asm.alu64_reg(AluOp.ADD, Reg.R6, Reg.R0),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
        )
        assert "variable offset" in msg

    def test_huge_pointer_offset(self, patched_kernel):
        msg = reject_msg(
            patched_kernel,
            [
                asm.mov64_reg(Reg.R1, Reg.R10),
                asm.alu64_imm(AluOp.ADD, Reg.R1, 1 << 30),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
        )
        assert "out of range" in msg

    def test_scalar_plus_pointer_commutes(self, patched_kernel):
        # scalar += pointer is rewritten as pointer + scalar.
        load(
            patched_kernel,
            [
                asm.mov64_imm(Reg.R1, -8),
                asm.alu64_reg(AluOp.ADD, Reg.R1, Reg.R10),
                asm.st_mem(Size.DW, Reg.R1, 0, 1),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
        )


class TestCve202223222:
    def _prog(self, kernel, fd):
        return [
            asm.st_mem(Size.DW, Reg.R10, -8, 0),
            *asm.ld_map_fd(Reg.R1, fd),
            asm.mov64_reg(Reg.R2, Reg.R10),
            asm.alu64_imm(AluOp.ADD, Reg.R2, -8),
            asm.call_helper(HelperId.MAP_LOOKUP_ELEM),
            asm.alu64_imm(AluOp.ADD, Reg.R0, 8),  # ALU on OR_NULL
            asm.jmp_imm(JmpOp.JNE, Reg.R0, 0, 2),
            asm.mov64_imm(Reg.R0, 0),
            asm.exit_insn(),
            asm.ldx_mem(Size.DW, Reg.R3, Reg.R0, 0),
            asm.mov64_imm(Reg.R0, 0),
            asm.exit_insn(),
        ]

    def test_fixed_kernel_rejects(self, patched_kernel):
        fd = patched_kernel.map_create(MapType.HASH, 8, 16, 4)
        msg = reject_msg(patched_kernel, self._prog(patched_kernel, fd))
        assert "pointer arithmetic" in msg

    def test_v5_15_accepts(self, v5_15_kernel):
        fd = v5_15_kernel.map_create(MapType.HASH, 8, 16, 4)
        load(v5_15_kernel, self._prog(v5_15_kernel, fd))
