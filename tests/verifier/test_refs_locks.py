"""Reference tracking and spin-lock discipline tests."""

from __future__ import annotations

import pytest

from repro.errors import VerifierReject
from repro.kernel.config import PROFILES
from repro.kernel.syscall import Kernel
from repro.ebpf import asm
from repro.ebpf.helpers import HelperId
from repro.ebpf.maps import MapType
from repro.ebpf.opcodes import AluOp, JmpOp, Reg, Size
from repro.ebpf.program import BpfProgram
from repro.runtime.executor import Executor


def load(kernel, insns, sanitize=False):
    return kernel.prog_load(BpfProgram(insns=list(insns)), sanitize=sanitize)


def reject(kernel, insns):
    with pytest.raises(VerifierReject) as exc:
        load(kernel, insns)
    return exc.value.message


def reserve_header(fd, size=16):
    return [
        *asm.ld_map_fd(Reg.R1, fd),
        asm.mov64_imm(Reg.R2, size),
        asm.mov64_imm(Reg.R3, 0),
        asm.call_helper(HelperId.RINGBUF_RESERVE),
    ]


class TestReferenceTracking:
    def _kernel(self):
        kernel = Kernel(PROFILES["patched"]())
        fd = kernel.map_create(MapType.RINGBUF, 0, 0, 4096)
        return kernel, fd

    def test_reserve_submit_accepted(self):
        kernel, fd = self._kernel()
        load(
            kernel,
            [
                *reserve_header(fd),
                asm.jmp_imm(JmpOp.JEQ, Reg.R0, 0, 4),
                asm.st_mem(Size.DW, Reg.R0, 0, 1),
                asm.mov64_reg(Reg.R1, Reg.R0),
                asm.mov64_imm(Reg.R2, 0),
                asm.call_helper(HelperId.RINGBUF_SUBMIT),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
        )

    def test_leak_rejected_with_alloc_site(self):
        kernel, fd = self._kernel()
        msg = reject(
            kernel,
            [
                *reserve_header(fd),
                asm.jmp_imm(JmpOp.JEQ, Reg.R0, 0, 1),
                asm.st_mem(Size.DW, Reg.R0, 0, 1),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
        )
        assert "Unreleased reference" in msg
        assert "alloc_insn=" in msg

    def test_null_branch_owes_nothing(self):
        kernel, fd = self._kernel()
        # The null path exits without releasing: legal, nothing acquired.
        load(
            kernel,
            [
                *reserve_header(fd),
                asm.jmp_imm(JmpOp.JNE, Reg.R0, 0, 2),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
                asm.mov64_reg(Reg.R1, Reg.R0),
                asm.mov64_imm(Reg.R2, 0),
                asm.call_helper(HelperId.RINGBUF_DISCARD),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
        )

    def test_release_requires_allocation_start(self):
        kernel, fd = self._kernel()
        msg = reject(
            kernel,
            [
                *reserve_header(fd),
                asm.jmp_imm(JmpOp.JEQ, Reg.R0, 0, 3),
                asm.alu64_imm(AluOp.ADD, Reg.R0, 8),  # mid-record pointer
                asm.mov64_reg(Reg.R1, Reg.R0),
                asm.call_helper(HelperId.RINGBUF_SUBMIT),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
        )
        assert "start of the allocation" in msg

    def test_plain_pointer_cannot_release(self):
        kernel, fd = self._kernel()
        msg = reject(
            kernel,
            [
                asm.mov64_reg(Reg.R1, Reg.R10),
                asm.alu64_imm(AluOp.ADD, Reg.R1, -8),
                asm.call_helper(HelperId.RINGBUF_SUBMIT),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
        )
        assert "acquired" in msg

    def test_record_bounds_enforced(self):
        kernel, fd = self._kernel()
        msg = reject(
            kernel,
            [
                *reserve_header(fd, size=16),
                asm.jmp_imm(JmpOp.JEQ, Reg.R0, 0, 3),
                asm.st_mem(Size.DW, Reg.R0, 16, 1),  # one past the end
                asm.mov64_reg(Reg.R1, Reg.R0),
                asm.call_helper(HelperId.RINGBUF_SUBMIT),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
        )
        assert "invalid access to memory" in msg

    def test_runtime_record_published(self):
        kernel, fd = self._kernel()
        verified = load(
            kernel,
            [
                *reserve_header(fd, size=8),
                asm.jmp_imm(JmpOp.JEQ, Reg.R0, 0, 4),
                asm.st_mem(Size.DW, Reg.R0, 0, 0x77),
                asm.mov64_reg(Reg.R1, Reg.R0),
                asm.mov64_imm(Reg.R2, 0),
                asm.call_helper(HelperId.RINGBUF_SUBMIT),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
            sanitize=True,
        )
        result = Executor(kernel).run(verified)
        assert result.report is None
        ringbuf = kernel.map_by_fd(fd)
        assert ringbuf.consume(8) == (0x77).to_bytes(8, "little")
        assert not kernel.ringbuf_records  # nothing left reserved


class TestSpinLock:
    def _kernel(self):
        kernel = Kernel(PROFILES["patched"]())
        fd = kernel.map_create(MapType.HASH, 8, 16, 4, has_spin_lock=True)
        kernel.map_update(fd, bytes(8), bytes(16))
        return kernel, fd

    def _lookup(self, fd):
        return [
            asm.st_mem(Size.DW, Reg.R10, -8, 0),
            *asm.ld_map_fd(Reg.R1, fd),
            asm.mov64_reg(Reg.R2, Reg.R10),
            asm.alu64_imm(AluOp.ADD, Reg.R2, -8),
            asm.call_helper(HelperId.MAP_LOOKUP_ELEM),
            asm.jmp_imm(JmpOp.JNE, Reg.R0, 0, 2),
            asm.mov64_imm(Reg.R0, 0),
            asm.exit_insn(),
        ]

    def test_balanced_lock_runs(self):
        kernel, fd = self._kernel()
        verified = load(
            kernel,
            [
                *self._lookup(fd),
                asm.mov64_reg(Reg.R6, Reg.R0),
                asm.mov64_reg(Reg.R1, Reg.R0),
                asm.call_helper(HelperId.SPIN_LOCK),
                asm.st_mem(Size.DW, Reg.R6, 8, 42),
                asm.mov64_reg(Reg.R1, Reg.R6),
                asm.call_helper(HelperId.SPIN_UNLOCK),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
            sanitize=True,
        )
        result = Executor(kernel).run(verified)
        assert result.report is None
        value = kernel.map_lookup(fd, bytes(8))
        assert int.from_bytes(value[8:16], "little") == 42

    def test_exit_with_lock_rejected(self):
        kernel, fd = self._kernel()
        msg = reject(
            kernel,
            [
                *self._lookup(fd),
                asm.mov64_reg(Reg.R1, Reg.R0),
                asm.call_helper(HelperId.SPIN_LOCK),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
        )
        assert "held but program exits" in msg

    def test_unlock_without_lock_rejected(self):
        kernel, fd = self._kernel()
        msg = reject(
            kernel,
            [
                *self._lookup(fd),
                asm.mov64_reg(Reg.R1, Reg.R0),
                asm.call_helper(HelperId.SPIN_UNLOCK),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
        )
        assert "without taking a lock" in msg

    def test_lock_region_access_rejected(self):
        kernel, fd = self._kernel()
        msg = reject(
            kernel,
            [
                *self._lookup(fd),
                asm.ldx_mem(Size.W, Reg.R1, Reg.R0, 0),  # reads the lock
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
        )
        assert "bpf_spin_lock is not allowed" in msg

    def test_calls_blocked_in_critical_section(self):
        kernel, fd = self._kernel()
        msg = reject(
            kernel,
            [
                *self._lookup(fd),
                asm.mov64_reg(Reg.R6, Reg.R0),
                asm.mov64_reg(Reg.R1, Reg.R0),
                asm.call_helper(HelperId.SPIN_LOCK),
                asm.call_helper(HelperId.KTIME_GET_NS),
                asm.mov64_reg(Reg.R1, Reg.R6),
                asm.call_helper(HelperId.SPIN_UNLOCK),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
        )
        assert "not allowed while holding a lock" in msg

    def test_lockless_map_cannot_lock(self):
        kernel = Kernel(PROFILES["patched"]())
        fd = kernel.map_create(MapType.HASH, 8, 16, 4)
        msg = reject(
            kernel,
            [
                *self._lookup(fd),
                asm.mov64_reg(Reg.R1, Reg.R0),
                asm.call_helper(HelperId.SPIN_LOCK),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
        )
        assert "does not contain" in msg

    def test_spin_lock_map_param_validation(self):
        from repro.errors import MapError

        kernel = Kernel(PROFILES["patched"]())
        with pytest.raises(MapError):
            kernel.map_create(MapType.QUEUE, 0, 16, 4, has_spin_lock=True)
        with pytest.raises(MapError):
            kernel.map_create(MapType.HASH, 8, 2, 4, has_spin_lock=True)
