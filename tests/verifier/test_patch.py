"""Instruction-patching (jump retargeting) tests."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.kernel.config import PROFILES
from repro.kernel.syscall import Kernel
from repro.ebpf import asm
from repro.ebpf.opcodes import AluOp, JmpOp, Reg, Size
from repro.ebpf.program import BpfProgram
from repro.runtime.executor import Executor
from repro.verifier.patch import insert_before


def nop():
    return asm.mov64_reg(Reg.AX, Reg.AX)


class TestInsertBefore:
    def test_no_insertions_identity(self):
        prog = [asm.mov64_imm(Reg.R0, 0), asm.exit_insn()]
        new, index_map = insert_before(prog, {})
        assert new == prog
        assert index_map == {0: 0, 1: 1}

    def test_forward_jump_across_insertion(self):
        prog = [
            asm.jmp_imm(JmpOp.JEQ, Reg.R1, 0, 1),  # -> idx 2
            asm.mov64_imm(Reg.R0, 1),
            asm.exit_insn(),
        ]
        new, index_map = insert_before(prog, {1: [nop(), nop()]})
        # The jump must now skip the inserted block AND the original.
        assert new[0].off == 3
        assert index_map == {0: 0, 1: 3, 2: 4}

    def test_jump_to_instrumented_target_lands_on_block(self):
        prog = [
            asm.jmp_imm(JmpOp.JEQ, Reg.R1, 0, 1),  # -> idx 2 (the load)
            asm.mov64_imm(Reg.R0, 1),
            asm.ldx_mem(Size.DW, Reg.R0, Reg.R10, -8),
            asm.exit_insn(),
        ]
        new, _ = insert_before(prog, {2: [nop()]})
        # Taken branch must execute the inserted nop first: target is
        # the block start (old idx2 -> new idx2), so off stays 1.
        assert new[0].off == 1
        assert new[2] == nop()

    def test_backward_jump(self):
        prog = [
            asm.mov64_imm(Reg.R1, 0),
            asm.alu64_imm(AluOp.ADD, Reg.R1, 1),
            asm.jmp_imm(JmpOp.JLT, Reg.R1, 5, -2),  # -> idx 1
            asm.mov64_imm(Reg.R0, 0),
            asm.exit_insn(),
        ]
        new, _ = insert_before(prog, {1: [nop()]})
        # Back edge must land on the inserted block before the ADD.
        jmp = next(i for i in new if i.is_cond_jmp())
        jmp_idx = new.index(jmp)
        assert jmp_idx + jmp.off + 1 == 1  # the nop sits at index 1

    def test_pseudo_call_retargeted(self):
        prog = [
            asm.mov64_imm(Reg.R1, 1),
            asm.call_subprog(2),
            asm.exit_insn(),
            nop(),
            asm.mov64_reg(Reg.R0, Reg.R1),
            asm.exit_insn(),
        ]
        new, index_map = insert_before(prog, {3: [nop()]})
        call = next(i for i in new if i.is_pseudo_call())
        call_idx = new.index(call)
        target = call_idx + call.imm + 1
        # No insertion at old idx 4, so the call lands exactly there.
        assert target == index_map[4]

    def test_insertion_at_multiple_points(self):
        prog = [
            asm.jmp_imm(JmpOp.JEQ, Reg.R1, 0, 2),
            asm.ldx_mem(Size.DW, Reg.R2, Reg.R10, -8),
            asm.ldx_mem(Size.DW, Reg.R3, Reg.R10, -16),
            asm.exit_insn(),
        ]
        new, index_map = insert_before(prog, {1: [nop()], 2: [nop(), nop()]})
        assert index_map == {0: 0, 1: 2, 2: 5, 3: 6}
        assert new[0].off == 5  # -> old idx 3, now at new idx 6


class TestSemanticsPreserved:
    @given(st.integers(min_value=0, max_value=20))
    def test_instrumented_loop_counts_identically(self, n):
        """Sanitation across a loop program must not change R0."""
        prog = BpfProgram(
            insns=[
                asm.mov64_imm(Reg.R0, 0),
                asm.mov64_imm(Reg.R1, 0),
                asm.st_mem(Size.DW, Reg.R10, -8, 7),
                asm.mov64_reg(Reg.R2, Reg.R10),
                asm.alu64_imm(AluOp.ADD, Reg.R2, -8),
                asm.ldx_mem(Size.DW, Reg.R3, Reg.R2, 0),
                asm.alu64_reg(AluOp.ADD, Reg.R0, Reg.R3),
                asm.alu64_imm(AluOp.ADD, Reg.R1, 1),
                asm.jmp_imm(JmpOp.JLT, Reg.R1, n, -6),
                asm.exit_insn(),
            ]
        )
        k_raw = Kernel(PROFILES["patched"]())
        raw = Executor(k_raw).run(k_raw.prog_load(prog))
        k_san = Kernel(PROFILES["patched"]())
        san = Executor(k_san).run(k_san.prog_load(prog, sanitize=True))
        assert raw.report is None and san.report is None
        assert raw.r0 == san.r0 == 7 * max(n, 1)
