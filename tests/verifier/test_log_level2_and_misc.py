"""Assorted verifier behaviours: MEMSX gating, JMP32 fields, misc."""

from __future__ import annotations

import errno

import pytest

from repro.errors import VerifierReject
from repro.kernel.config import PROFILES
from repro.kernel.syscall import Kernel
from repro.ebpf import asm
from repro.ebpf.insn import Insn
from repro.ebpf.opcodes import AluOp, InsnClass, JmpOp, Reg, Size, Src
from repro.ebpf.program import BpfProgram, ProgType


def load(kernel, insns, prog_type=ProgType.SOCKET_FILTER):
    return kernel.prog_load(BpfProgram(insns=list(insns), prog_type=prog_type))


def reject(kernel, insns, prog_type=ProgType.SOCKET_FILTER):
    with pytest.raises(VerifierReject) as exc:
        load(kernel, insns, prog_type)
    return exc.value


class TestFeatureGating:
    def _memsx_prog(self):
        return [
            asm.st_mem(Size.B, Reg.R10, -1, 0x80),
            asm.ldx_memsx(Size.B, Reg.R0, Reg.R10, -1),
            asm.exit_insn(),
        ]

    def test_memsx_accepted_on_new_kernels(self, bpf_next_kernel):
        load(bpf_next_kernel, self._memsx_prog())

    def test_memsx_rejected_on_old_kernels(self, v5_15_kernel):
        exc = reject(v5_15_kernel, self._memsx_prog())
        assert "MEMSX" in exc.message

    def test_memsx_dw_invalid(self, bpf_next_kernel):
        bad = Insn(
            opcode=InsnClass.LDX | Size.DW | 0x80,  # MEMSX mode
            dst=Reg.R0, src=Reg.R10, off=-8,
        )
        exc = reject(bpf_next_kernel, [bad, asm.exit_insn()])
        assert exc.errno == errno.EINVAL


class TestReservedFields:
    def test_alu_imm_with_src_reg_set(self, patched_kernel):
        bad = Insn(opcode=InsnClass.ALU64 | AluOp.ADD | Src.K,
                   dst=Reg.R0, src=3, imm=1)
        exc = reject(
            patched_kernel,
            [asm.mov64_imm(Reg.R0, 0), bad, asm.exit_insn()],
        )
        assert "reserved" in exc.message

    def test_alu_reg_with_imm_set(self, patched_kernel):
        bad = Insn(opcode=InsnClass.ALU64 | AluOp.ADD | Src.X,
                   dst=Reg.R0, src=Reg.R1, imm=5)
        exc = reject(
            patched_kernel,
            [asm.mov64_imm(Reg.R0, 0), asm.mov64_imm(Reg.R1, 0), bad,
             asm.exit_insn()],
        )
        assert "reserved" in exc.message

    def test_jmp_reg_with_imm_set(self, patched_kernel):
        bad = Insn(opcode=InsnClass.JMP | JmpOp.JEQ | Src.X,
                   dst=Reg.R0, src=Reg.R1, imm=5, off=0)
        exc = reject(
            patched_kernel,
            [asm.mov64_imm(Reg.R0, 0), asm.mov64_imm(Reg.R1, 0), bad,
             asm.exit_insn()],
        )
        assert "reserved" in exc.message

    def test_call_with_dst_set(self, patched_kernel):
        bad = Insn(opcode=InsnClass.JMP | JmpOp.CALL, dst=3, imm=5)
        exc = reject(patched_kernel, [bad, asm.exit_insn()])
        assert "reserved" in exc.message

    def test_jmp32_ja_invalid(self, patched_kernel):
        bad = Insn(opcode=InsnClass.JMP32 | JmpOp.JA, off=0)
        exc = reject(
            patched_kernel,
            [asm.mov64_imm(Reg.R0, 0), bad, asm.exit_insn()],
        )
        assert "JMP32" in exc.message


class TestSpillSemantics:
    def test_partial_pointer_store_rejected(self, patched_kernel):
        exc = reject(
            patched_kernel,
            [
                asm.mov64_reg(Reg.R1, Reg.R10),
                asm.stx_mem(Size.W, Reg.R10, Reg.R1, -8),  # 4-byte ptr spill
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
        )
        assert "partial spill" in exc.message

    def test_pointer_spill_through_copied_fp(self, patched_kernel):
        # Spilling through r2 = r10 - N must preserve the pointer too.
        load(
            patched_kernel,
            [
                asm.mov64_reg(Reg.R2, Reg.R10),
                asm.alu64_imm(AluOp.ADD, Reg.R2, -8),
                asm.mov64_reg(Reg.R1, Reg.R10),
                asm.stx_mem(Size.DW, Reg.R2, Reg.R1, 0),
                asm.ldx_mem(Size.DW, Reg.R3, Reg.R10, -8),
                asm.st_mem(Size.DW, Reg.R3, -16, 7),  # use the filled fp
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
        )


class TestReturnValue:
    def test_map_value_in_r0_at_exit_rejected(self, patched_kernel):
        from repro.ebpf.maps import MapType
        from repro.ebpf.helpers import HelperId

        fd = patched_kernel.map_create(MapType.HASH, 8, 8, 4)
        exc = reject(
            patched_kernel,
            [
                asm.st_mem(Size.DW, Reg.R10, -8, 0),
                *asm.ld_map_fd(Reg.R1, fd),
                asm.mov64_reg(Reg.R2, Reg.R10),
                asm.alu64_imm(AluOp.ADD, Reg.R2, -8),
                asm.call_helper(HelperId.MAP_LOOKUP_ELEM),
                asm.jmp_imm(JmpOp.JNE, Reg.R0, 0, 1),
                asm.exit_insn(),  # null path: R0 == 0, fine
                asm.exit_insn(),  # non-null path: leaks the pointer!
            ],
        )
        assert "leaks addr" in exc.message
