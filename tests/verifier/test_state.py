"""Register-state and bounds-synchronisation tests."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.verifier.state import (
    RegState,
    RegType,
    S64_MAX,
    S64_MIN,
    U64_MAX,
    regs_equal_scalar_range,
    s64,
    u64,
)
from repro.verifier.tnum import Tnum, tnum_const

U64 = U64_MAX


class TestConstructors:
    def test_not_init(self):
        reg = RegState.not_init()
        assert reg.type == RegType.NOT_INIT
        assert not reg.is_scalar()
        assert not reg.is_pointer()

    def test_const_scalar(self):
        reg = RegState.const_scalar(-1)
        assert reg.is_const()
        assert reg.const_value() == U64
        assert reg.smin == reg.smax == -1
        assert reg.umin == reg.umax == U64

    def test_unknown_scalar(self):
        reg = RegState.unknown_scalar()
        assert reg.is_scalar()
        assert not reg.is_const()
        assert reg.umin == 0 and reg.umax == U64

    def test_pointer(self):
        reg = RegState.pointer(RegType.PTR_TO_STACK)
        assert reg.is_pointer()
        assert reg.var_off.is_const()
        assert reg.off == 0

    def test_maybe_null_types(self):
        assert RegState.pointer(RegType.PTR_TO_MAP_VALUE_OR_NULL).is_maybe_null()
        assert not RegState.pointer(RegType.PTR_TO_MAP_VALUE).is_maybe_null()
        assert not RegState.pointer(RegType.PTR_TO_BTF_ID).is_maybe_null()


class TestBoundsSync:
    def test_tnum_tightens_unsigned(self):
        reg = RegState.unknown_scalar()
        reg.var_off = tnum_const(0xF0).or_(Tnum(0, 0x0F))  # 0xF0..0xFF
        reg.sync_bounds()
        assert reg.umin == 0xF0
        assert reg.umax == 0xFF
        assert reg.smin == 0xF0 and reg.smax == 0xFF

    def test_unsigned_bounds_tighten_tnum(self):
        reg = RegState.unknown_scalar()
        reg.umax = 7
        reg.sync_bounds()
        assert reg.var_off.max_value() <= 7

    def test_negative_range(self):
        reg = RegState.unknown_scalar()
        reg.smin, reg.smax = -8, -1
        reg.sync_bounds()
        assert reg.umin == u64(-8)
        assert reg.umax == u64(-1)

    def test_sign_known_merges_ranges(self):
        reg = RegState.unknown_scalar()
        reg.smin, reg.smax = 0, 100
        reg.umin = 10
        reg.sync_bounds()
        assert reg.smin == 10
        assert reg.umax == 100

    @given(
        st.integers(min_value=0, max_value=U64),
        st.integers(min_value=0, max_value=U64),
    )
    def test_sync_preserves_members(self, a, b):
        """Any value inside both tnum and ranges stays inside after sync."""
        lo, hi = min(a, b), max(a, b)
        reg = RegState.unknown_scalar()
        reg.umin, reg.umax = lo, hi
        reg.sync_bounds()
        for probe in (lo, hi, (lo + hi) // 2):
            assert reg.umin <= probe <= reg.umax
            assert reg.var_off.contains(probe) or not reg.var_off.is_const()

    def test_broken_bounds(self):
        reg = RegState.unknown_scalar()
        reg.umin, reg.umax = 10, 5
        assert reg.is_bounds_broken()


class TestMutation:
    def test_mark_known(self):
        reg = RegState.pointer(RegType.PTR_TO_MAP_VALUE)
        reg.mark_known(7)
        assert reg.is_const() and reg.const_value() == 7
        assert reg.map is None

    def test_mark_unknown_clears_referents(self):
        reg = RegState.pointer(RegType.PTR_TO_MAP_VALUE)
        reg.map = object()
        reg.id = 3
        reg.mark_unknown()
        assert reg.is_scalar()
        assert reg.map is None and reg.id == 0

    def test_clone_independent(self):
        reg = RegState.const_scalar(1)
        copy = reg.clone()
        copy.mark_known(2)
        assert reg.const_value() == 1


class TestSubsumption:
    def test_tighter_range_subsumed(self):
        old = RegState.unknown_scalar()
        old.umin, old.umax = 0, 100
        old.smin, old.smax = 0, 100
        old.sync_bounds()
        new = RegState.const_scalar(50)
        assert regs_equal_scalar_range(old, new)
        assert not regs_equal_scalar_range(new, old)

    def test_tnum_subset_required(self):
        old = RegState.unknown_scalar()
        old.var_off = Tnum(0, ~1 & U64)  # even numbers... (bit0 known 0)
        old.sync_bounds()
        odd = RegState.const_scalar(3)
        even = RegState.const_scalar(4)
        assert not regs_equal_scalar_range(old, odd)
        assert regs_equal_scalar_range(old, even)

    def test_identical_states_subsumed(self):
        a = RegState.unknown_scalar()
        b = RegState.unknown_scalar()
        assert regs_equal_scalar_range(a, b)


class TestHelpers:
    @given(st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1))
    def test_s64_u64_roundtrip(self, value):
        assert s64(u64(value)) == value

    def test_u32_bounds_narrow_value(self):
        reg = RegState.const_scalar(0x1_0000_0005)
        lo, hi = reg.u32_bounds()
        assert lo == hi == 5
