"""Fixup-phase tests: immediate resolution and rewrite metadata."""

from __future__ import annotations

import pytest

from repro.kernel.config import PROFILES
from repro.kernel.syscall import Kernel
from repro.ebpf import asm
from repro.ebpf.helpers import HelperId
from repro.ebpf.maps import MapType
from repro.ebpf.opcodes import AluOp, JmpOp, PseudoSrc, Reg, Size
from repro.ebpf.program import BpfProgram, ProgType


class TestImmediateResolution:
    def test_map_fd_becomes_kernel_address(self, patched_kernel):
        fd = patched_kernel.map_create(MapType.HASH, 8, 8, 4)
        bpf_map = patched_kernel.map_by_fd(fd)
        verified = patched_kernel.prog_load(
            BpfProgram(
                insns=[
                    *asm.ld_map_fd(Reg.R1, fd),
                    asm.mov64_imm(Reg.R0, 0),
                    asm.exit_insn(),
                ]
            )
        )
        resolved = verified.xlated[0]
        assert resolved.imm64 == patched_kernel.map_kobj_addr(bpf_map)
        assert 0 in verified.map_addrs

    def test_direct_map_value_address(self, patched_kernel):
        fd = patched_kernel.map_create(MapType.ARRAY, 4, 32, 1)
        bpf_map = patched_kernel.map_by_fd(fd)
        verified = patched_kernel.prog_load(
            BpfProgram(
                insns=[
                    *asm.ld_map_value(Reg.R1, fd, 16),
                    asm.st_mem(Size.DW, Reg.R1, 0, 1),
                    asm.mov64_imm(Reg.R0, 0),
                    asm.exit_insn(),
                ]
            )
        )
        assert verified.xlated[0].imm64 == bpf_map._values.start + 16

    def test_absent_btf_resolves_to_null(self, patched_kernel):
        verified = patched_kernel.prog_load(
            BpfProgram(
                insns=[
                    *asm.ld_btf_id(Reg.R1, patched_kernel.btf.absent_ksym_id),
                    asm.mov64_imm(Reg.R0, 0),
                    asm.exit_insn(),
                ],
                prog_type=ProgType.KPROBE,
            )
        )
        assert verified.xlated[0].imm64 == 0

    def test_present_btf_resolves_to_object(self, patched_kernel):
        task_id = patched_kernel.btf.current_task_id
        verified = patched_kernel.prog_load(
            BpfProgram(
                insns=[
                    *asm.ld_btf_id(Reg.R1, task_id),
                    asm.mov64_imm(Reg.R0, 0),
                    asm.exit_insn(),
                ],
                prog_type=ProgType.KPROBE,
            )
        )
        obj = patched_kernel.btf.object(task_id)
        assert verified.xlated[0].imm64 == obj.address


class TestAluLimits:
    def _var_offset_prog(self, fd):
        return BpfProgram(
            insns=[
                *asm.ld_map_value(Reg.R6, fd, 0),
                asm.call_helper(HelperId.GET_PRANDOM_U32),
                asm.alu64_imm(AluOp.AND, Reg.R0, 15),
                asm.alu64_reg(AluOp.ADD, Reg.R6, Reg.R0),  # var ptr ALU
                asm.ldx_mem(Size.B, Reg.R1, Reg.R6, 0),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ]
        )

    def test_alu_limit_recorded(self, patched_kernel):
        fd = patched_kernel.map_create(MapType.ARRAY, 4, 32, 1)
        verified = patched_kernel.prog_load(self._var_offset_prog(fd))
        assert verified.alu_limits
        (limit, op), = verified.alu_limits.values()
        assert limit == 32  # value_size - off

    def test_sanitized_alu_limit_check_emitted(self, patched_kernel):
        from repro.sanitizer.asan_funcs import ASAN_ALU_LIMIT

        fd = patched_kernel.map_create(MapType.ARRAY, 4, 32, 1)
        verified = patched_kernel.prog_load(
            self._var_offset_prog(fd), sanitize=True
        )
        checks = [
            i for i in verified.xlated
            if i.is_helper_call() and i.imm == ASAN_ALU_LIMIT
        ]
        assert len(checks) == 1
        assert checks[0].off == 32  # the limit rides in the off field


class TestMetadataRelocation:
    def test_probe_mem_indices_track_insertions(self, patched_kernel):
        verified = patched_kernel.prog_load(
            BpfProgram(
                insns=[
                    asm.call_helper(HelperId.GET_CURRENT_TASK_BTF),
                    asm.ldx_mem(Size.W, Reg.R1, Reg.R0, 32),
                    asm.mov64_imm(Reg.R0, 0),
                    asm.exit_insn(),
                ],
                prog_type=ProgType.KPROBE,
            ),
            sanitize=True,
        )
        # The relocated probe_mem index must point at the actual load.
        (idx,) = verified.probe_mem
        assert verified.xlated[idx].is_memory_load()
        assert idx in verified.sanitized_sites

    def test_sanitizer_insn_indices_are_inserted_code(self, patched_kernel):
        fd = patched_kernel.map_create(MapType.ARRAY, 4, 8, 1)
        verified = patched_kernel.prog_load(
            BpfProgram(
                insns=[
                    *asm.ld_map_value(Reg.R1, fd, 0),
                    asm.st_mem(Size.DW, Reg.R1, 0, 5),
                    asm.mov64_imm(Reg.R0, 0),
                    asm.exit_insn(),
                ]
            ),
            sanitize=True,
        )
        assert verified.sanitizer_insns
        for idx in verified.sanitizer_insns:
            assert idx not in verified.sanitized_sites
