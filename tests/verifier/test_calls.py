"""Helper/kfunc call-checking tests."""

from __future__ import annotations

import errno

import pytest

from repro.errors import VerifierReject
from repro.kernel.config import PROFILES, Flaw
from repro.kernel.syscall import Kernel
from repro.ebpf import asm
from repro.ebpf.helpers import HelperId
from repro.ebpf.kfuncs import KFUNC_GET_TASK, KFUNC_RAND, KFUNC_TASK_PID
from repro.ebpf.maps import MapType
from repro.ebpf.opcodes import AluOp, JmpOp, Reg, Size
from repro.ebpf.program import BpfProgram, ProgType


def load(kernel, insns, prog_type=ProgType.KPROBE):
    return kernel.prog_load(BpfProgram(insns=list(insns), prog_type=prog_type))


def reject(kernel, insns, prog_type=ProgType.KPROBE):
    with pytest.raises(VerifierReject) as exc:
        load(kernel, insns, prog_type)
    return exc.value


class TestArgumentChecking:
    def test_unknown_helper_einval(self, patched_kernel):
        exc = reject(patched_kernel, [asm.call_helper(777), asm.exit_insn()])
        assert exc.errno == errno.EINVAL
        assert "unknown" in exc.message

    def test_uninit_arg(self, patched_kernel):
        fd = patched_kernel.map_create(MapType.HASH, 8, 8, 4)
        exc = reject(
            patched_kernel,
            [
                *asm.ld_map_fd(Reg.R1, fd),
                # R2 never initialised
                asm.call_helper(HelperId.MAP_LOOKUP_ELEM),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
        )
        assert "!read_ok" in exc.message

    def test_maybe_null_arg_rejected(self, patched_kernel):
        fd = patched_kernel.map_create(MapType.HASH, 8, 8, 4)
        # Pass the OR_NULL result of a lookup as a map value argument.
        exc = reject(
            patched_kernel,
            [
                asm.st_mem(Size.DW, Reg.R10, -8, 0),
                *asm.ld_map_fd(Reg.R6, fd),
                asm.mov64_reg(Reg.R1, Reg.R6),
                asm.mov64_reg(Reg.R2, Reg.R10),
                asm.alu64_imm(AluOp.ADD, Reg.R2, -8),
                asm.call_helper(HelperId.MAP_LOOKUP_ELEM),
                asm.mov64_reg(Reg.R3, Reg.R0),
                asm.mov64_reg(Reg.R1, Reg.R6),
                asm.mov64_reg(Reg.R2, Reg.R10),
                asm.alu64_imm(AluOp.ADD, Reg.R2, -8),
                asm.mov64_imm(Reg.R4, 0),
                asm.call_helper(HelperId.MAP_UPDATE_ELEM),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
        )
        assert "non-null" in exc.message

    def test_stack_region_too_small(self, patched_kernel):
        exc = reject(
            patched_kernel,
            [
                asm.mov64_reg(Reg.R1, Reg.R10),
                asm.alu64_imm(AluOp.ADD, Reg.R1, -4),
                asm.mov64_imm(Reg.R2, 16),  # 16 bytes from fp-4: OOB
                asm.call_helper(HelperId.GET_CURRENT_COMM),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
        )
        assert "indirect access" in exc.message

    def test_negative_size_rejected(self, patched_kernel):
        exc = reject(
            patched_kernel,
            [
                asm.mov64_reg(Reg.R1, Reg.R10),
                asm.alu64_imm(AluOp.ADD, Reg.R1, -16),
                asm.mov64_imm(Reg.R2, -5),
                asm.call_helper(HelperId.GET_CURRENT_COMM),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
        )
        assert "negative" in exc.message or "may be" in exc.message

    def test_writable_region_need_not_be_initialised(self, patched_kernel):
        # get_current_comm writes; uninitialised stack is fine, and the
        # region becomes readable afterwards.
        load(
            patched_kernel,
            [
                asm.mov64_reg(Reg.R1, Reg.R10),
                asm.alu64_imm(AluOp.ADD, Reg.R1, -16),
                asm.mov64_imm(Reg.R2, 16),
                asm.call_helper(HelperId.GET_CURRENT_COMM),
                asm.ldx_mem(Size.DW, Reg.R0, Reg.R10, -16),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
        )

    def test_map_value_region_checked_against_value_size(self, patched_kernel):
        fd = patched_kernel.map_create(MapType.QUEUE, 0, 32, 4)
        # Queue value is 32 bytes but only 8 provided on the stack.
        exc = reject(
            patched_kernel,
            [
                asm.st_mem(Size.DW, Reg.R10, -8, 1),
                *asm.ld_map_fd(Reg.R1, fd),
                asm.mov64_reg(Reg.R2, Reg.R10),
                asm.alu64_imm(AluOp.ADD, Reg.R2, -8),
                asm.mov64_imm(Reg.R3, 0),
                asm.call_helper(HelperId.MAP_PUSH_ELEM),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
        )
        assert exc.errno == errno.EACCES


class TestReturnTypes:
    def test_integer_return_is_unknown_scalar(self, patched_kernel):
        # Using R0 as an index without bounding must fail.
        fd = patched_kernel.map_create(MapType.ARRAY, 4, 8, 1)
        exc = reject(
            patched_kernel,
            [
                *asm.ld_map_value(Reg.R6, fd, 0),
                asm.call_helper(HelperId.KTIME_GET_NS),
                asm.alu64_reg(AluOp.ADD, Reg.R6, Reg.R0),
                asm.ldx_mem(Size.B, Reg.R1, Reg.R6, 0),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
        )
        assert "invalid access to map value" in exc.message

    def test_btf_return_usable_without_null_check(self, patched_kernel):
        load(
            patched_kernel,
            [
                asm.call_helper(HelperId.GET_CURRENT_TASK_BTF),
                asm.ldx_mem(Size.W, Reg.R1, Reg.R0, 32),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
        )


class TestKfuncs:
    def test_kfunc_requires_feature(self, v5_15_kernel):
        exc = reject(
            v5_15_kernel,
            [asm.call_kfunc(KFUNC_RAND), asm.mov64_imm(Reg.R0, 0),
             asm.exit_insn()],
        )
        assert "not supported" in exc.message

    def test_unknown_kfunc(self, patched_kernel):
        exc = reject(
            patched_kernel,
            [asm.call_kfunc(1234), asm.mov64_imm(Reg.R0, 0), asm.exit_insn()],
        )
        assert "not allowed" in exc.message

    def test_kfunc_arg_type_checked(self, patched_kernel):
        exc = reject(
            patched_kernel,
            [
                asm.mov64_imm(Reg.R1, 5),
                asm.call_kfunc(KFUNC_TASK_PID),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
        )
        assert "BTF object pointer" in exc.message

    def test_kfunc_r0_invalidated_when_fixed(self, patched_kernel):
        fd = patched_kernel.map_create(MapType.HASH, 8, 16, 4)
        exc = reject(
            patched_kernel,
            [
                asm.st_mem(Size.DW, Reg.R10, -8, 0),
                *asm.ld_map_fd(Reg.R1, fd),
                asm.mov64_reg(Reg.R2, Reg.R10),
                asm.alu64_imm(AluOp.ADD, Reg.R2, -8),
                asm.call_helper(HelperId.MAP_LOOKUP_ELEM),
                asm.jmp_imm(JmpOp.JNE, Reg.R0, 0, 2),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
                asm.mov64_reg(Reg.R6, Reg.R0),
                asm.mov64_imm(Reg.R0, 4),
                asm.call_kfunc(KFUNC_RAND),
                asm.alu64_reg(AluOp.ADD, Reg.R6, Reg.R0),
                asm.ldx_mem(Size.B, Reg.R3, Reg.R6, 0),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
        )
        assert "invalid access to map value" in exc.message

    def test_kfunc_r0_stale_when_flawed(self, bpf_next_kernel):
        assert bpf_next_kernel.config.has_flaw(Flaw.KFUNC_BACKTRACK)
        fd = bpf_next_kernel.map_create(MapType.HASH, 8, 16, 4)
        load(
            bpf_next_kernel,
            [
                asm.st_mem(Size.DW, Reg.R10, -8, 0),
                *asm.ld_map_fd(Reg.R1, fd),
                asm.mov64_reg(Reg.R2, Reg.R10),
                asm.alu64_imm(AluOp.ADD, Reg.R2, -8),
                asm.call_helper(HelperId.MAP_LOOKUP_ELEM),
                asm.jmp_imm(JmpOp.JNE, Reg.R0, 0, 2),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
                asm.mov64_reg(Reg.R6, Reg.R0),
                asm.mov64_imm(Reg.R0, 4),
                asm.call_kfunc(KFUNC_RAND),
                asm.alu64_reg(AluOp.ADD, Reg.R6, Reg.R0),
                asm.ldx_mem(Size.B, Reg.R3, Reg.R6, 0),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
        )

    def test_kfunc_btf_return(self, patched_kernel):
        load(
            patched_kernel,
            [
                asm.call_kfunc(KFUNC_GET_TASK),
                asm.ldx_mem(Size.W, Reg.R1, Reg.R0, 32),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
        )

    def test_helper_notes_lock_usage(self, patched_kernel):
        verified = load(
            patched_kernel,
            [
                asm.mov64_reg(Reg.R1, Reg.R10),
                asm.alu64_imm(AluOp.ADD, Reg.R1, -8),
                asm.st_mem(Size.DW, Reg.R1, 0, 1),
                asm.mov64_imm(Reg.R2, 8),
                asm.call_helper(HelperId.TRACE_PRINTK),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
        )
        assert verified.uses_lock_helpers
        assert int(HelperId.TRACE_PRINTK) in verified.helper_ids
