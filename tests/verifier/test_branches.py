"""Branch reasoning unit tests: refinement, decisions, nullness."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.kernel.config import PROFILES
from repro.ebpf.opcodes import JmpOp
from repro.verifier.branches import (
    is_branch_taken,
    mark_ptr_or_null,
    propagate_nullness,
    refine_branch,
)
from repro.verifier.env import FuncFrame, VerifierState
from repro.verifier.state import RegState, RegType

U64 = (1 << 64) - 1


def scalar(lo=0, hi=U64):
    reg = RegState.unknown_scalar()
    reg.umin, reg.umax = lo, hi
    reg.smin, reg.smax = lo if hi <= (1 << 63) - 1 else -(1 << 63), min(
        hi, (1 << 63) - 1
    )
    reg.sync_bounds()
    return reg


class TestIsBranchTaken:
    def test_const_decisions(self):
        five = RegState.const_scalar(5)
        assert is_branch_taken(five, RegState.const_scalar(5), JmpOp.JEQ, True) == 1
        assert is_branch_taken(five, RegState.const_scalar(6), JmpOp.JEQ, True) == 0
        assert is_branch_taken(five, RegState.const_scalar(4), JmpOp.JGT, True) == 1
        assert is_branch_taken(five, RegState.const_scalar(5), JmpOp.JGT, True) == 0

    def test_range_decisions(self):
        lo = scalar(0, 10)
        hi = scalar(100, 200)
        assert is_branch_taken(hi, lo, JmpOp.JGT, True) == 1
        assert is_branch_taken(lo, hi, JmpOp.JLT, True) == 1
        assert is_branch_taken(lo, hi, JmpOp.JGE, True) == 0

    def test_overlap_unknown(self):
        a = scalar(0, 100)
        b = scalar(50, 150)
        assert is_branch_taken(a, b, JmpOp.JGT, True) == -1

    def test_jset(self):
        reg = RegState.const_scalar(0b1010)
        assert is_branch_taken(reg, RegState.const_scalar(0b0010),
                               JmpOp.JSET, True) == 1
        assert is_branch_taken(reg, RegState.const_scalar(0b0101),
                               JmpOp.JSET, True) == 0

    def test_signed_decisions(self):
        minus_one = RegState.const_scalar(U64)
        one = RegState.const_scalar(1)
        assert is_branch_taken(minus_one, one, JmpOp.JSLT, True) == 1
        assert is_branch_taken(minus_one, one, JmpOp.JGT, True) == 1  # unsigned

    def test_nonnull_pointer_vs_zero(self):
        stack = RegState.pointer(RegType.PTR_TO_STACK)
        zero = RegState.const_scalar(0)
        assert is_branch_taken(stack, zero, JmpOp.JEQ, True) == 0
        assert is_branch_taken(stack, zero, JmpOp.JNE, True) == 1

    def test_btf_pointer_vs_zero_undecidable(self):
        # PTR_TO_BTF_ID may be NULL at runtime: never decide.
        btf = RegState.pointer(RegType.PTR_TO_BTF_ID)
        zero = RegState.const_scalar(0)
        assert is_branch_taken(btf, zero, JmpOp.JEQ, True) == -1


class TestRefinement:
    @given(
        st.sampled_from([JmpOp.JGT, JmpOp.JGE, JmpOp.JLT, JmpOp.JLE,
                         JmpOp.JEQ]),
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=0, max_value=1000),
        st.booleans(),
    )
    def test_refinement_sound(self, op, value, bound, taken):
        """A concrete value satisfying the branch outcome must remain
        within the refined bounds."""
        concrete = {
            JmpOp.JEQ: value == bound,
            JmpOp.JGT: value > bound,
            JmpOp.JGE: value >= bound,
            JmpOp.JLT: value < bound,
            JmpOp.JLE: value <= bound,
        }[op]
        if concrete != taken:
            return  # runtime wouldn't take this path
        reg = scalar(0, 1000)
        rhs = RegState.const_scalar(bound)
        refine_branch(reg, rhs, op, taken=taken, is64=True)
        assert reg.umin <= value <= reg.umax

    def test_jgt_taken_tightens_umin(self):
        reg = scalar(0, 100)
        refine_branch(reg, RegState.const_scalar(50), JmpOp.JGT, True, True)
        assert reg.umin == 51
        assert reg.umax == 100

    def test_jgt_false_tightens_umax(self):
        reg = scalar(0, 100)
        refine_branch(reg, RegState.const_scalar(50), JmpOp.JGT, False, True)
        assert reg.umax == 50

    def test_jeq_taken_pins_value(self):
        reg = scalar(0, 100)
        refine_branch(reg, RegState.const_scalar(7), JmpOp.JEQ, True, True)
        assert reg.is_const() and reg.const_value() == 7

    def test_reg_reg_refinement(self):
        a = scalar(0, 100)
        b = scalar(40, 60)
        refine_branch(a, b, JmpOp.JGT, True, True)
        assert a.umin == 41

    def test_jset_false_clears_bits(self):
        reg = scalar(0, U64)
        refine_branch(reg, RegState.const_scalar(0xF0), JmpOp.JSET, False, True)
        assert reg.var_off.mask & 0xF0 == 0
        assert reg.var_off.value & 0xF0 == 0

    def test_broken_bounds_detectable(self):
        reg = scalar(10, 20)
        refine_branch(reg, RegState.const_scalar(50), JmpOp.JGT, True, True)
        assert reg.is_bounds_broken()


def _state_with(regs: dict[int, RegState]) -> VerifierState:
    frame = FuncFrame.entry(RegState.pointer(RegType.PTR_TO_CTX))
    for idx, reg in regs.items():
        frame.regs[idx] = reg
    return VerifierState(frames=[frame])


class TestNullness:
    def _or_null(self, reg_id=7):
        reg = RegState.pointer(RegType.PTR_TO_MAP_VALUE_OR_NULL)
        reg.id = reg_id
        return reg

    def test_mark_null_resolves_all_copies(self):
        a, b = self._or_null(), self._or_null()
        state = _state_with({2: a, 3: b})
        mark_ptr_or_null(state, 7, is_null=False)
        assert state.regs[2].type == RegType.PTR_TO_MAP_VALUE
        assert state.regs[3].type == RegType.PTR_TO_MAP_VALUE

    def test_mark_null_makes_zero_scalar(self):
        state = _state_with({2: self._or_null()})
        mark_ptr_or_null(state, 7, is_null=True)
        assert state.regs[2].is_const()
        assert state.regs[2].const_value() == 0

    def test_spilled_copies_resolved_too(self):
        state = _state_with({2: self._or_null()})
        state.stack.write_reg(-8, self._or_null())
        mark_ptr_or_null(state, 7, is_null=False)
        assert state.stack.spilled_reg(-8).type == RegType.PTR_TO_MAP_VALUE

    def test_different_id_untouched(self):
        other = self._or_null(reg_id=9)
        state = _state_with({2: self._or_null(), 3: other})
        mark_ptr_or_null(state, 7, is_null=False)
        assert state.regs[3].type == RegType.PTR_TO_MAP_VALUE_OR_NULL


class TestNullnessPropagation:
    def _setup(self):
        nullable = RegState.pointer(RegType.PTR_TO_MAP_VALUE_OR_NULL)
        nullable.id = 5
        btf = RegState.pointer(RegType.PTR_TO_BTF_ID)
        stack = RegState.pointer(RegType.PTR_TO_STACK)
        return nullable, btf, stack

    def test_flawed_propagates_from_btf(self):
        nullable, btf, _ = self._setup()
        state = _state_with({2: nullable})
        config = PROFILES["bpf-next"]()
        propagate_nullness(state, state.regs[2], btf, config, flaw_active=True)
        assert state.regs[2].type == RegType.PTR_TO_MAP_VALUE

    def test_fixed_filters_btf(self):
        nullable, btf, _ = self._setup()
        state = _state_with({2: nullable})
        config = PROFILES["patched"]()
        propagate_nullness(state, state.regs[2], btf, config, flaw_active=False)
        assert state.regs[2].type == RegType.PTR_TO_MAP_VALUE_OR_NULL

    def test_fixed_still_propagates_from_stack(self):
        nullable, _, stack = self._setup()
        state = _state_with({2: nullable})
        config = PROFILES["patched"]()
        propagate_nullness(state, state.regs[2], stack, config, flaw_active=False)
        assert state.regs[2].type == RegType.PTR_TO_MAP_VALUE

    def test_gated_on_feature_flag(self):
        nullable, _, stack = self._setup()
        state = _state_with({2: nullable})
        config = PROFILES["v6.1"]()  # pass not merged yet
        assert not config.has_nullness_propagation
        propagate_nullness(state, state.regs[2], stack, config, flaw_active=False)
        assert state.regs[2].type == RegType.PTR_TO_MAP_VALUE_OR_NULL
