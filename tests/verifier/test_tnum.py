"""Tristate-number soundness properties.

The defining property of every tnum operation: if concrete values x, y
are contained in tnums A, B, then ``x <op> y`` must be contained in
``A <op> B``.  Hypothesis drives these over random (tnum, member)
pairs.
"""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.verifier.tnum import (
    _MEMO_OPS,
    TNUM_UNKNOWN,
    TNUM_ZERO,
    Tnum,
    tnum_const,
    tnum_memo_clear,
    tnum_memo_stats,
    tnum_range,
)

U64 = (1 << 64) - 1


@st.composite
def tnum_with_member(draw):
    """A random tnum plus a concrete value it contains."""
    mask = draw(st.integers(min_value=0, max_value=U64))
    known = draw(st.integers(min_value=0, max_value=U64)) & ~mask
    member_bits = draw(st.integers(min_value=0, max_value=U64)) & mask
    return Tnum(known & U64, mask & U64), (known | member_bits) & U64


class TestInvariants:
    def test_invariant_enforced(self):
        with pytest.raises(ValueError):
            Tnum(0b11, 0b01)

    def test_const_properties(self):
        t = tnum_const(42)
        assert t.is_const()
        assert t.contains(42)
        assert not t.contains(43)
        assert t.min_value() == t.max_value() == 42

    def test_unknown_contains_everything(self):
        assert TNUM_UNKNOWN.contains(0)
        assert TNUM_UNKNOWN.contains(U64)
        assert TNUM_UNKNOWN.is_unknown()

    def test_zero(self):
        assert TNUM_ZERO.is_const()
        assert TNUM_ZERO.value == 0

    @given(tnum_with_member())
    def test_membership_consistent_with_minmax(self, tm):
        t, x = tm
        assert t.contains(x)
        assert t.min_value() <= x <= t.max_value()


class TestArithmeticSoundness:
    @given(tnum_with_member(), tnum_with_member())
    def test_add(self, a, b):
        (ta, x), (tb, y) = a, b
        assert ta.add(tb).contains((x + y) & U64)

    @given(tnum_with_member(), tnum_with_member())
    def test_sub(self, a, b):
        (ta, x), (tb, y) = a, b
        assert ta.sub(tb).contains((x - y) & U64)

    @given(tnum_with_member())
    def test_neg(self, a):
        ta, x = a
        assert ta.neg().contains((-x) & U64)

    @given(tnum_with_member(), tnum_with_member())
    def test_and(self, a, b):
        (ta, x), (tb, y) = a, b
        assert ta.and_(tb).contains(x & y)

    @given(tnum_with_member(), tnum_with_member())
    def test_or(self, a, b):
        (ta, x), (tb, y) = a, b
        assert ta.or_(tb).contains(x | y)

    @given(tnum_with_member(), tnum_with_member())
    def test_xor(self, a, b):
        (ta, x), (tb, y) = a, b
        assert ta.xor(tb).contains(x ^ y)

    @given(tnum_with_member(), tnum_with_member())
    def test_mul(self, a, b):
        (ta, x), (tb, y) = a, b
        assert ta.mul(tb).contains((x * y) & U64)

    @given(tnum_with_member(), st.integers(min_value=0, max_value=63))
    def test_lshift(self, a, shift):
        ta, x = a
        assert ta.lshift(shift).contains((x << shift) & U64)

    @given(tnum_with_member(), st.integers(min_value=0, max_value=63))
    def test_rshift(self, a, shift):
        ta, x = a
        assert ta.rshift(shift).contains(x >> shift)

    @given(tnum_with_member(), st.integers(min_value=0, max_value=63))
    def test_arshift64(self, a, shift):
        ta, x = a
        signed = x - (1 << 64) if x >= (1 << 63) else x
        assert ta.arshift(shift).contains((signed >> shift) & U64)


class TestSetOperations:
    @given(tnum_with_member(), tnum_with_member())
    def test_union_contains_both(self, a, b):
        (ta, x), (tb, y) = a, b
        u = ta.union(tb)
        assert u.contains(x)
        assert u.contains(y)

    @given(tnum_with_member())
    def test_intersect_with_unknown_is_identity_on_members(self, a):
        ta, x = a
        assert ta.intersect(TNUM_UNKNOWN).contains(x)

    @given(
        st.integers(min_value=0, max_value=U64),
        st.integers(min_value=0, max_value=U64),
        st.integers(min_value=0, max_value=U64),
    )
    def test_range_contains_interval(self, a, b, probe):
        lo, hi = min(a, b), max(a, b)
        t = tnum_range(lo, hi)
        value = lo + probe % (hi - lo + 1)
        assert t.contains(value)


class TestWidths:
    @given(tnum_with_member())
    def test_cast32(self, a):
        ta, x = a
        assert ta.cast(4).contains(x & 0xFFFFFFFF)

    @given(tnum_with_member())
    def test_subreg_roundtrip(self, a):
        ta, x = a
        rebuilt = ta.with_subreg(ta.subreg())
        assert rebuilt.contains(x)

    def test_subreg_const(self):
        t = tnum_const(0x1234_5678_9ABC_DEF0)
        assert t.subreg_is_const()
        assert t.const_subreg_val() == 0x9ABC_DEF0

    def test_clear_subreg(self):
        t = tnum_const(0x1234_5678_9ABC_DEF0).clear_subreg()
        assert t.contains(0x1234_5678_0000_0000)

    def test_alignment(self):
        assert tnum_const(16).is_aligned(8)
        assert not tnum_const(12).is_aligned(8)
        assert tnum_const(12).is_aligned(4)
        # Unknown low bits are not provably aligned.
        assert not Tnum(0, 0x7).is_aligned(8)
        assert Tnum(8, ~0xF & U64).is_aligned(8)


# ---------------------------------------------------------------------------
# Well-formedness preservation (Issue 6): every operation must return a
# tnum satisfying the representation invariant — value & mask == 0 and
# both fields within u64 — while still containing the concrete result.
# ``__post_init__`` hard-fails on broken construction, so a violation
# here would surface as ValueError; asserting the fields directly keeps
# the property explicit and catches any future bypass of the
# constructor.
# ---------------------------------------------------------------------------


def assert_wellformed(t: Tnum) -> None:
    assert t.value & t.mask == 0
    assert 0 <= t.value <= U64
    assert 0 <= t.mask <= U64


@st.composite
def tnum_pair_sharing_member(draw):
    """Two tnums that both contain the same concrete value (the
    precondition for ``intersect``)."""
    x = draw(st.integers(min_value=0, max_value=U64))
    mask_a = draw(st.integers(min_value=0, max_value=U64))
    mask_b = draw(st.integers(min_value=0, max_value=U64))
    return Tnum(x & ~mask_a & U64, mask_a), Tnum(x & ~mask_b & U64, mask_b), x


_BINARY_OPS = {
    "add": (Tnum.add, lambda x, y: (x + y) & U64),
    "sub": (Tnum.sub, lambda x, y: (x - y) & U64),
    "mul": (Tnum.mul, lambda x, y: (x * y) & U64),
    "and": (Tnum.and_, lambda x, y: x & y),
    "or": (Tnum.or_, lambda x, y: x | y),
    "xor": (Tnum.xor, lambda x, y: x ^ y),
}


class TestWellFormednessPreservation:
    @pytest.mark.parametrize("opname", sorted(_BINARY_OPS))
    @given(tnum_with_member(), tnum_with_member())
    def test_binary_ops(self, opname, a, b):
        op, concrete = _BINARY_OPS[opname]
        (ta, x), (tb, y) = a, b
        result = op(ta, tb)
        assert_wellformed(result)
        assert result.contains(concrete(x, y))

    @given(tnum_with_member())
    def test_neg(self, a):
        ta, x = a
        result = ta.neg()
        assert_wellformed(result)
        assert result.contains((-x) & U64)

    @pytest.mark.parametrize("shift", [0, 1, 31, 32, 63])
    @given(tnum_with_member())
    def test_shifts(self, shift, a):
        ta, x = a
        for result, concrete in (
            (ta.lshift(shift), (x << shift) & U64),
            (ta.rshift(shift), x >> shift),
        ):
            assert_wellformed(result)
            assert result.contains(concrete)

    @pytest.mark.parametrize("shift", [0, 1, 31, 63])
    @given(tnum_with_member())
    def test_arshift64(self, shift, a):
        ta, x = a
        signed = x - (1 << 64) if x >= (1 << 63) else x
        result = ta.arshift(shift, 64)
        assert_wellformed(result)
        assert result.contains((signed >> shift) & U64)

    @pytest.mark.parametrize("shift", [0, 1, 15, 31])
    @given(tnum_with_member())
    def test_arshift32(self, shift, a):
        ta, x = a
        x32 = x & 0xFFFFFFFF
        signed = x32 - (1 << 32) if x32 >= (1 << 31) else x32
        result = ta.arshift(shift, 32)
        assert_wellformed(result)
        assert result.contains((signed >> shift) & 0xFFFFFFFF)

    @given(tnum_with_member(), tnum_with_member())
    def test_union(self, a, b):
        (ta, x), (tb, y) = a, b
        result = ta.union(tb)
        assert_wellformed(result)
        assert result.contains(x)
        assert result.contains(y)

    @given(tnum_pair_sharing_member())
    def test_intersect(self, shared):
        ta, tb, x = shared
        result = ta.intersect(tb)
        assert_wellformed(result)
        assert result.contains(x)

    @given(tnum_with_member())
    def test_width_ops(self, a):
        ta, x = a
        for result, member in (
            (ta.cast(4), x & 0xFFFFFFFF),
            (ta.cast(2), x & 0xFFFF),
            (ta.cast(1), x & 0xFF),
            (ta.subreg(), x & 0xFFFFFFFF),
            (ta.clear_subreg(), x & ~0xFFFFFFFF & U64),
            (ta.with_subreg(ta.subreg()), x),
        ):
            assert_wellformed(result)
            assert result.contains(member)

    @given(tnum_with_member(), tnum_with_member())
    def test_range_from_minmax_wellformed(self, a, b):
        (ta, x), (tb, y) = a, b
        lo, hi = min(x, y), max(x, y)
        result = tnum_range(lo, hi)
        assert_wellformed(result)
        assert result.contains(lo)
        assert result.contains(hi)


@st.composite
def raw_tnum_ints(draw):
    """A valid raw ``(value, mask)`` pair, as the memo kernels take it."""
    mask = draw(st.integers(min_value=0, max_value=U64))
    value = draw(st.integers(min_value=0, max_value=U64)) & ~mask
    return value & U64, mask & U64


class TestMemoInvisibility:
    """The lru_cache on each op kernel must be semantically invisible.

    Every kernel in ``_MEMO_OPS`` is an ``lru_cache``-wrapped pure
    function of ints; ``fn.__wrapped__`` is the unmemoized original.
    For any valid operands, the cached call must return a tnum equal to
    the uncached computation — and a second cached call (a guaranteed
    LRU hit) must return the same result again.  This is the property
    that lets the verifier fast path memoize ALU ops at all.
    """

    @staticmethod
    def _check(fn, *args):
        cached = fn(*args)
        uncached = fn.__wrapped__(*args)
        assert_wellformed(cached)
        assert cached == uncached
        assert fn(*args) == uncached  # hit path agrees too

    @given(raw_tnum_ints(), raw_tnum_ints())
    def test_binary_kernels(self, a, b):
        for name in ("add", "sub", "and", "or", "xor", "mul",
                     "intersect", "union"):
            self._check(_MEMO_OPS[name], a[0], a[1], b[0], b[1])

    @given(raw_tnum_ints(), st.integers(min_value=0, max_value=127))
    def test_shift_kernels(self, a, shift):
        self._check(_MEMO_OPS["lshift"], a[0], a[1], shift)
        self._check(_MEMO_OPS["rshift"], a[0], a[1], shift)
        for bitness in (32, 64):
            self._check(_MEMO_OPS["arshift"], a[0], a[1], shift, bitness)

    @given(st.integers(min_value=0, max_value=U64),
           st.integers(min_value=0, max_value=U64))
    def test_const_and_range_kernels(self, lo, hi):
        self._check(_MEMO_OPS["const"], lo)
        self._check(_MEMO_OPS["range"], lo, hi)

    def test_clear_and_stats_roundtrip(self):
        tnum_memo_clear()
        base = tnum_memo_stats()
        assert base["entries"] == 0
        tnum_const(99)
        tnum_const(99)
        after = tnum_memo_stats()
        assert after["misses"] - base["misses"] >= 1
        assert after["hits"] - base["hits"] >= 1
