"""VStateChecker: invariant triggers, corpus cleanliness, regressions.

Three layers:

1. each invariant code fires on a crafted register state that breaks
   exactly that invariant;
2. the full selftest corpus verifies cleanly under every kernel
   profile with ``check_invariants=True`` — the verifier never commits
   an impossible abstract state;
3. minimal repros for the ALU soundness bugs the checker surfaced
   (u64 RSH by zero, 32-bit ARSH of negative subregs) stay fixed.
"""

from __future__ import annotations

import pytest

from repro.errors import BpfError, InvariantViolation, VerifierReject
from repro.kernel.config import PROFILES
from repro.kernel.syscall import Kernel
from repro.ebpf.opcodes import AluOp
from repro.testsuite import all_selftests_extended
from repro.verifier.checks import scalar_alu
from repro.verifier.sanity import INVARIANT_CODES, VStateChecker
from repro.verifier.state import RegState, RegType, S64_MAX, S64_MIN, U64_MAX
from repro.verifier.tnum import Tnum, tnum_const

U32_MAX = (1 << 32) - 1


def broken_tnum(value: int, mask: int) -> Tnum:
    """A tnum violating the representation invariant (constructor
    forbids this, so the checker is the only line of defence)."""
    t = object.__new__(Tnum)
    object.__setattr__(t, "value", value)
    object.__setattr__(t, "mask", mask)
    return t


def violation_code(reg: RegState) -> str:
    with pytest.raises(InvariantViolation) as excinfo:
        VStateChecker().check_reg(reg)
    return excinfo.value.code


class TestInvariantTriggers:
    def test_tnum_wellformed_overlap(self):
        reg = RegState.unknown_scalar()
        reg.var_off = broken_tnum(0b11, 0b01)
        assert violation_code(reg) == "INV_TNUM_WELLFORMED"

    def test_tnum_wellformed_out_of_u64(self):
        reg = RegState.unknown_scalar()
        reg.var_off = broken_tnum(1 << 64, 0)
        assert violation_code(reg) == "INV_TNUM_WELLFORMED"

    def test_bounds_domain_unsigned(self):
        reg = RegState.unknown_scalar()
        reg.umax = 1 << 64
        assert violation_code(reg) == "INV_BOUNDS_DOMAIN"

    def test_bounds_domain_signed(self):
        reg = RegState.unknown_scalar()
        reg.smin = S64_MIN - 1
        assert violation_code(reg) == "INV_BOUNDS_DOMAIN"

    def test_bounds_order(self):
        reg = RegState.const_scalar(10)
        reg.umin, reg.umax = 10, 5
        reg.var_off = tnum_const(5)
        assert violation_code(reg) == "INV_BOUNDS_ORDER"

    def test_bounds_empty_disjoint_views(self):
        # Unsigned says [5, 10]; signed says [-20, -15], which lives in
        # the top of u64 space — no concrete value satisfies both.
        reg = RegState.unknown_scalar()
        reg.umin, reg.umax = 5, 10
        reg.smin, reg.smax = -20, -15
        assert violation_code(reg) == "INV_BOUNDS_EMPTY"

    def test_tnum_range_sync(self):
        reg = RegState.const_scalar(5)
        reg.var_off = tnum_const(100)
        assert violation_code(reg) == "INV_TNUM_RANGE_SYNC"

    def test_u32_view_disagrees_with_subreg_tnum(self):
        # 64-bit tnum [0, 2^33] overlaps [5, 5], but its low 32 bits
        # are known zero while the u32 view says exactly 5.
        reg = RegState.const_scalar(5)
        reg.var_off = Tnum(0, 1 << 33)
        assert violation_code(reg) == "INV_U32_BOUNDS"

    def test_pointer_offset_out_of_range(self):
        reg = RegState.pointer(RegType.PTR_TO_STACK)
        reg.off = 1 << 31
        assert violation_code(reg) == "INV_POINTER_OFFSET"

    def test_clean_states_pass(self):
        checker = VStateChecker()
        checker.check_reg(RegState.unknown_scalar())
        checker.check_reg(RegState.const_scalar(0))
        checker.check_reg(RegState.const_scalar(U64_MAX))
        checker.check_reg(RegState.pointer(RegType.PTR_TO_STACK))
        neg = RegState.const_scalar(U64_MAX)  # s64 -1
        neg.sync_bounds()
        checker.check_reg(neg)

    def test_all_codes_have_a_trigger(self):
        # Keep this file honest as codes are added.
        covered = {
            "INV_TNUM_WELLFORMED",
            "INV_BOUNDS_DOMAIN",
            "INV_BOUNDS_ORDER",
            "INV_BOUNDS_EMPTY",
            "INV_TNUM_RANGE_SYNC",
            "INV_U32_BOUNDS",
            "INV_POINTER_OFFSET",
        }
        assert covered == set(INVARIANT_CODES)


class TestCorpusClean:
    @pytest.mark.parametrize("profile", sorted(PROFILES))
    def test_selftest_corpus_commits_no_broken_state(self, profile):
        """InvariantViolation is not a verdict: it must never escape a
        corpus verification, on flawed and fixed profiles alike."""
        for selftest in all_selftests_extended():
            kernel = Kernel(PROFILES[profile]())
            prog = selftest.build(kernel)
            try:
                kernel.prog_load(prog, sanitize=False, check_invariants=True)
            except InvariantViolation as violation:  # pragma: no cover
                pytest.fail(f"{selftest.name} on {profile}: {violation}")
            except (VerifierReject, BpfError):
                pass

    def test_checker_actually_ran(self):
        from repro.ebpf import asm
        from repro.ebpf.opcodes import JmpOp, Reg
        from repro.ebpf.program import BpfProgram
        from repro.verifier.core import Verifier

        kernel = Kernel(PROFILES["patched"]())
        # A conditional branch so at least one checkpoint fires.
        prog = BpfProgram(
            insns=[
                asm.mov64_imm(Reg.R0, 1),
                asm.jmp_imm(JmpOp.JEQ, Reg.R0, 0, 1),
                asm.mov64_imm(Reg.R0, 2),
                asm.exit_insn(),
            ]
        )
        verifier = Verifier(kernel, prog, check_invariants=True)
        verifier.verify()
        assert verifier.sanity is not None
        assert verifier.sanity.states_checked > 0

    def test_disabled_by_default(self):
        from repro.ebpf import asm
        from repro.ebpf.opcodes import Reg
        from repro.ebpf.program import BpfProgram
        from repro.verifier.core import Verifier

        kernel = Kernel(PROFILES["patched"]())
        prog = BpfProgram(
            insns=[asm.mov64_imm(Reg.R0, 0), asm.exit_insn()]
        )
        assert Verifier(kernel, prog).sanity is None


class TestAluRegressions:
    """Minimal repros for the soundness bugs VStateChecker surfaced."""

    def test_rsh_by_zero_keeps_full_range(self):
        # r >>= 0 must be the identity.  The old code copied umax into
        # smax unconditionally; for an unknown scalar that put smax out
        # of the s64 domain and sync_bounds "repaired" it by unsoundly
        # halving umax, excluding e.g. the concrete value U64_MAX.
        reg = RegState.unknown_scalar()
        scalar_alu(None, reg, RegState.const_scalar(0), AluOp.RSH, True)
        assert reg.umax == U64_MAX
        assert reg.var_off.contains(U64_MAX)
        VStateChecker().check_reg(reg)

    @pytest.mark.parametrize("value,shift", [
        (U64_MAX, 0), (U64_MAX, 1), (U64_MAX, 63),
        (1 << 63, 0), (1 << 63, 7), (0x1234_5678_9ABC_DEF0, 13),
    ])
    def test_rsh_member_soundness(self, value, shift):
        reg = RegState.const_scalar(value)
        scalar_alu(None, reg, RegState.const_scalar(shift), AluOp.RSH, True)
        concrete = value >> shift
        assert reg.umin <= concrete <= reg.umax
        assert reg.var_off.contains(concrete)
        VStateChecker().check_reg(reg)

    def test_arsh32_negative_subreg(self):
        # 0xFFFFFFFF is s32 -1; arithmetic shift must replicate bit 31.
        # The old code shifted the zero-extended u64 view logically-ish
        # via its s64 bounds, producing [0, 131071] — excluding the
        # concrete result 0xFFFFFFFF.
        reg = RegState.const_scalar(0xFFFFFFFF)
        scalar_alu(None, reg, RegState.const_scalar(15), AluOp.ARSH, False)
        assert reg.umin <= 0xFFFFFFFF <= reg.umax
        assert reg.var_off.contains(0xFFFFFFFF)
        VStateChecker().check_reg(reg)

    @pytest.mark.parametrize("value,shift", [
        (0xFFFFFFFF, 15), (0x80000000, 1), (0x80000000, 31),
        (0x7FFFFFFF, 3), (0, 9), (0xDEADBEEF, 16),
    ])
    def test_arsh32_member_soundness(self, value, shift):
        reg = RegState.const_scalar(value)
        scalar_alu(None, reg, RegState.const_scalar(shift), AluOp.ARSH, False)
        signed = value - (1 << 32) if value >= (1 << 31) else value
        concrete = (signed >> shift) & U32_MAX
        assert reg.umin <= concrete <= reg.umax
        assert reg.var_off.contains(concrete)
        VStateChecker().check_reg(reg)

    def test_arsh32_sign_unknown_range(self):
        # A subreg that may be positive or negative: the result can be
        # anything in u32 — both extremes must stay representable.
        reg = RegState.unknown_scalar()
        scalar_alu(None, reg, RegState.const_scalar(4), AluOp.ARSH, False)
        assert reg.umin == 0
        assert reg.umax == U32_MAX
        VStateChecker().check_reg(reg)

    def test_deduce_bounds_unsigned_informs_signed(self):
        # Kernel reg_bounds_sync parity: a non-negative unsigned range
        # pins the signed bounds (and vice versa).
        reg = RegState.unknown_scalar()
        reg.umin, reg.umax = 5, 100
        reg.sync_bounds()
        assert reg.smin == 5
        assert reg.smax == 100
        VStateChecker().check_reg(reg)

    def test_deduce_bounds_negative_range(self):
        reg = RegState.unknown_scalar()
        reg.umin = U64_MAX - 9  # s64 [-10, -1]
        reg.sync_bounds()
        assert reg.smin == -10
        assert reg.smax == -1
        VStateChecker().check_reg(reg)
