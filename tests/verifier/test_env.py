"""Exploration-environment tests: state subsumption and pruning."""

from __future__ import annotations

import pytest

from repro.verifier.env import (
    FuncFrame,
    VerifierEnv,
    VerifierState,
    states_equal,
)
from repro.verifier.log import VerifierLog
from repro.verifier.state import RegState, RegType


def fresh_state() -> VerifierState:
    return VerifierState(
        frames=[FuncFrame.entry(RegState.pointer(RegType.PTR_TO_CTX))]
    )


class TestStatesEqual:
    def test_identical_states(self):
        assert states_equal(fresh_state(), fresh_state())

    def test_not_init_subsumes_anything(self):
        old, new = fresh_state(), fresh_state()
        new.regs[3] = RegState.const_scalar(5)
        assert states_equal(old, new)

    def test_wider_scalar_subsumes_narrower(self):
        old, new = fresh_state(), fresh_state()
        old.regs[2] = RegState.unknown_scalar()
        new.regs[2] = RegState.const_scalar(5)
        assert states_equal(old, new)
        assert not states_equal(new, old)

    def test_pointer_type_must_match(self):
        old, new = fresh_state(), fresh_state()
        old.regs[2] = RegState.pointer(RegType.PTR_TO_STACK)
        new.regs[2] = RegState.pointer(RegType.PTR_TO_CTX)
        assert not states_equal(old, new)

    def test_pointer_offset_must_match(self):
        old, new = fresh_state(), fresh_state()
        old.regs[2] = RegState.pointer(RegType.PTR_TO_STACK)
        old.regs[2].off = -8
        new.regs[2] = RegState.pointer(RegType.PTR_TO_STACK)
        new.regs[2].off = -16
        assert not states_equal(old, new)

    def test_packet_range_direction(self):
        old, new = fresh_state(), fresh_state()
        old.regs[2] = RegState.pointer(RegType.PTR_TO_PACKET)
        old.regs[2].pkt_range = 8
        new.regs[2] = RegState.pointer(RegType.PTR_TO_PACKET)
        new.regs[2].pkt_range = 16
        # More verified range satisfies less; not vice versa.
        assert states_equal(old, new)
        assert not states_equal(new, old)

    def test_stack_constraints_checked(self):
        old, new = fresh_state(), fresh_state()
        old.stack.write_misc(-8, 8)
        # New state never wrote that slot: old's knowledge is missing.
        assert not states_equal(old, new)
        new.stack.write_misc(-8, 8)
        assert states_equal(old, new)

    def test_spill_subsumption(self):
        old, new = fresh_state(), fresh_state()
        old.stack.write_reg(-8, RegState.unknown_scalar())
        new.stack.write_reg(-8, RegState.const_scalar(3))
        assert states_equal(old, new)

    def test_refs_count_must_match(self):
        old, new = fresh_state(), fresh_state()
        new.refs[5] = 10
        assert not states_equal(old, new)

    def test_lock_state_must_match(self):
        old, new = fresh_state(), fresh_state()
        new.active_lock = (1, 2)
        assert not states_equal(old, new)

    def test_frame_count_must_match(self):
        old, new = fresh_state(), fresh_state()
        new.frames.append(FuncFrame.entry(RegState.not_init(), frameno=1,
                                          callsite=3))
        assert not states_equal(old, new)


class TestEnv:
    def _env(self):
        return VerifierEnv(VerifierLog(), complexity_limit=1000)

    def test_push_pop(self):
        env = self._env()
        assert env.pop_state() is None
        state = fresh_state()
        env.push_state(state)
        assert env.pop_state() is state
        assert env.pop_state() is None

    def test_is_visited_prunes_duplicates(self):
        env = self._env()
        first = fresh_state()
        assert not env.is_visited(first)
        second = fresh_state()
        assert env.is_visited(second)
        assert env.states_pruned == 1

    def test_different_indices_tracked_separately(self):
        env = self._env()
        a = fresh_state()
        b = fresh_state()
        b.insn_idx = 7
        assert not env.is_visited(a)
        assert not env.is_visited(b)

    def test_id_allocator_monotonic(self):
        env = self._env()
        ids = [env.new_id() for _ in range(10)]
        assert ids == sorted(set(ids))

    def test_clone_isolates_states(self):
        state = fresh_state()
        state.refs[1] = 2
        copy = state.clone()
        copy.regs[0] = RegState.const_scalar(1)
        copy.refs[3] = 4
        assert state.regs[0].type == RegType.NOT_INIT
        assert 3 not in state.refs
