"""Memory-access verification across all pointer types."""

from __future__ import annotations

import pytest

from repro.errors import VerifierReject
from repro.kernel.config import PROFILES, Flaw
from repro.kernel.syscall import Kernel
from repro.ebpf import asm
from repro.ebpf.helpers import HelperId
from repro.ebpf.maps import MapType
from repro.ebpf.opcodes import AluOp, JmpOp, Reg, Size
from repro.ebpf.program import BpfProgram, ProgType


def load(kernel, insns, prog_type=ProgType.SOCKET_FILTER):
    return kernel.prog_load(BpfProgram(insns=list(insns), prog_type=prog_type))


def reject_msg(kernel, insns, prog_type=ProgType.SOCKET_FILTER):
    with pytest.raises(VerifierReject) as exc:
        load(kernel, insns, prog_type)
    return exc.value.message


class TestScalarDeref:
    def test_scalar_deref_rejected(self, patched_kernel):
        msg = reject_msg(
            patched_kernel,
            [
                asm.mov64_imm(Reg.R1, 0x1000),
                asm.ldx_mem(Size.DW, Reg.R0, Reg.R1, 0),
                asm.exit_insn(),
            ],
        )
        assert "invalid mem access 'scalar'" in msg

    def test_uninit_deref_rejected(self, patched_kernel):
        msg = reject_msg(
            patched_kernel,
            [asm.ldx_mem(Size.DW, Reg.R0, Reg.R4, 0), asm.exit_insn()],
        )
        assert "!read_ok" in msg


class TestMaybeNull:
    def test_or_null_deref_rejected(self, patched_kernel):
        fd = patched_kernel.map_create(MapType.HASH, 8, 8, 4)
        msg = reject_msg(
            patched_kernel,
            [
                asm.st_mem(Size.DW, Reg.R10, -8, 0),
                *asm.ld_map_fd(Reg.R1, fd),
                asm.mov64_reg(Reg.R2, Reg.R10),
                asm.alu64_imm(AluOp.ADD, Reg.R2, -8),
                asm.call_helper(HelperId.MAP_LOOKUP_ELEM),
                asm.ldx_mem(Size.DW, Reg.R3, Reg.R0, 0),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
        )
        assert "possibly NULL" in msg

    def test_null_branch_resolves_both_sides(self, patched_kernel):
        fd = patched_kernel.map_create(MapType.HASH, 8, 8, 4)
        # JEQ 0: taken -> pointer is null scalar; fall-through -> usable.
        load(
            patched_kernel,
            [
                asm.st_mem(Size.DW, Reg.R10, -8, 0),
                *asm.ld_map_fd(Reg.R1, fd),
                asm.mov64_reg(Reg.R2, Reg.R10),
                asm.alu64_imm(AluOp.ADD, Reg.R2, -8),
                asm.call_helper(HelperId.MAP_LOOKUP_ELEM),
                asm.jmp_imm(JmpOp.JEQ, Reg.R0, 0, 2),
                asm.ldx_mem(Size.DW, Reg.R3, Reg.R0, 0),
                asm.mov64_imm(Reg.R0, 0),
                # null path: R0 became scalar 0 -> legal to exit with
                asm.exit_insn(),
            ],
        )

    def test_null_resolution_propagates_to_copies(self, patched_kernel):
        fd = patched_kernel.map_create(MapType.HASH, 8, 8, 4)
        # Copy the OR_NULL pointer, null-check the copy, use the original.
        load(
            patched_kernel,
            [
                asm.st_mem(Size.DW, Reg.R10, -8, 0),
                *asm.ld_map_fd(Reg.R1, fd),
                asm.mov64_reg(Reg.R2, Reg.R10),
                asm.alu64_imm(AluOp.ADD, Reg.R2, -8),
                asm.call_helper(HelperId.MAP_LOOKUP_ELEM),
                asm.mov64_reg(Reg.R6, Reg.R0),
                asm.jmp_imm(JmpOp.JNE, Reg.R6, 0, 2),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
                asm.ldx_mem(Size.DW, Reg.R3, Reg.R0, 0),  # original usable
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
        )


class TestBtfAccess:
    def _task_prog(self, off, size=Size.DW):
        return [
            asm.call_helper(HelperId.GET_CURRENT_TASK_BTF),
            asm.ldx_mem(size, Reg.R1, Reg.R0, off),
            asm.mov64_imm(Reg.R0, 0),
            asm.exit_insn(),
        ]

    def test_within_bounds(self, patched_kernel):
        load(patched_kernel, self._task_prog(0), ProgType.KPROBE)
        load(patched_kernel, self._task_prog(120), ProgType.KPROBE)

    def test_past_end_rejected(self, patched_kernel):
        msg = reject_msg(patched_kernel, self._task_prog(128), ProgType.KPROBE)
        assert "invalid access to task_struct" in msg

    def test_bug2_slack_accepted_when_flawed(self, bpf_next_kernel):
        assert bpf_next_kernel.config.has_flaw(Flaw.TASK_STRUCT_OOB)
        load(bpf_next_kernel, self._task_prog(128), ProgType.KPROBE)

    def test_bug2_slack_is_bounded(self, bpf_next_kernel):
        # Even the flawed check rejects far-out accesses.
        with pytest.raises(VerifierReject):
            load(bpf_next_kernel, self._task_prog(256), ProgType.KPROBE)

    def test_negative_offset_rejected(self, patched_kernel):
        with pytest.raises(VerifierReject):
            load(patched_kernel, self._task_prog(-8), ProgType.KPROBE)

    def test_btf_loads_marked_probe_mem(self, patched_kernel):
        verified = load(patched_kernel, self._task_prog(16), ProgType.KPROBE)
        assert len(verified.probe_mem) == 1


class TestStackAccess:
    def test_variable_stack_access_rejected(self, patched_kernel):
        msg = reject_msg(
            patched_kernel,
            [
                asm.call_helper(HelperId.GET_PRANDOM_U32),
                asm.alu64_imm(AluOp.AND, Reg.R0, 7),
                asm.mov64_reg(Reg.R1, Reg.R10),
                asm.alu64_reg(AluOp.SUB, Reg.R1, Reg.R0),
                asm.st_mem(Size.B, Reg.R1, -8, 1),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
        )
        assert "variable stack access" in msg


class TestMapValueVarOffset:
    def test_bounded_variable_offset_ok(self, patched_kernel):
        fd = patched_kernel.map_create(MapType.ARRAY, 4, 64, 1)
        load(
            patched_kernel,
            [
                *asm.ld_map_value(Reg.R6, fd, 0),
                asm.call_helper(HelperId.GET_PRANDOM_U32),
                asm.alu64_imm(AluOp.AND, Reg.R0, 31),
                asm.alu64_reg(AluOp.ADD, Reg.R6, Reg.R0),
                asm.ldx_mem(Size.DW, Reg.R1, Reg.R6, 0),  # 31+8 <= 64
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
        )

    def test_overlapping_variable_offset_rejected(self, patched_kernel):
        fd = patched_kernel.map_create(MapType.ARRAY, 4, 32, 1)
        msg = reject_msg(
            patched_kernel,
            [
                *asm.ld_map_value(Reg.R6, fd, 0),
                asm.call_helper(HelperId.GET_PRANDOM_U32),
                asm.alu64_imm(AluOp.AND, Reg.R0, 31),
                asm.alu64_reg(AluOp.ADD, Reg.R6, Reg.R0),
                asm.ldx_mem(Size.DW, Reg.R1, Reg.R6, 0),  # 31+8 > 32
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
        )
        assert "invalid access to map value" in msg


class TestPacket:
    def test_range_via_lt(self, patched_kernel):
        # "if end > data+n" with operands reversed also learns ranges.
        load(
            patched_kernel,
            [
                asm.ldx_mem(Size.W, Reg.R2, Reg.R1, 76),
                asm.ldx_mem(Size.W, Reg.R3, Reg.R1, 80),
                asm.mov64_reg(Reg.R4, Reg.R2),
                asm.alu64_imm(AluOp.ADD, Reg.R4, 8),
                asm.jmp_reg(JmpOp.JGE, Reg.R3, Reg.R4, 2),  # end >= data+8
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
                asm.ldx_mem(Size.DW, Reg.R5, Reg.R2, 0),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
        )

    def test_access_beyond_checked_range_rejected(self, patched_kernel):
        msg = reject_msg(
            patched_kernel,
            [
                asm.ldx_mem(Size.W, Reg.R2, Reg.R1, 76),
                asm.ldx_mem(Size.W, Reg.R3, Reg.R1, 80),
                asm.mov64_reg(Reg.R4, Reg.R2),
                asm.alu64_imm(AluOp.ADD, Reg.R4, 8),
                asm.jmp_reg(JmpOp.JGT, Reg.R4, Reg.R3, 1),
                asm.ldx_mem(Size.DW, Reg.R5, Reg.R2, 8),  # [8..16) > range 8
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
        )
        assert "invalid access to packet" in msg

    def test_packet_write_rejected_for_socket_filter(self, patched_kernel):
        msg = reject_msg(
            patched_kernel,
            [
                asm.ldx_mem(Size.W, Reg.R2, Reg.R1, 76),
                asm.ldx_mem(Size.W, Reg.R3, Reg.R1, 80),
                asm.mov64_reg(Reg.R4, Reg.R2),
                asm.alu64_imm(AluOp.ADD, Reg.R4, 2),
                asm.jmp_reg(JmpOp.JGT, Reg.R4, Reg.R3, 1),
                asm.st_mem(Size.B, Reg.R2, 0, 1),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
        )
        assert "cannot write into packet" in msg

    def test_packet_write_allowed_for_tc(self, patched_kernel):
        load(
            patched_kernel,
            [
                asm.ldx_mem(Size.W, Reg.R2, Reg.R1, 76),
                asm.ldx_mem(Size.W, Reg.R3, Reg.R1, 80),
                asm.mov64_reg(Reg.R4, Reg.R2),
                asm.alu64_imm(AluOp.ADD, Reg.R4, 2),
                asm.jmp_reg(JmpOp.JGT, Reg.R4, Reg.R3, 1),
                asm.st_mem(Size.B, Reg.R2, 0, 1),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
            prog_type=ProgType.SCHED_CLS,
        )

    def test_pkt_end_deref_rejected(self, patched_kernel):
        msg = reject_msg(
            patched_kernel,
            [
                asm.ldx_mem(Size.W, Reg.R3, Reg.R1, 80),
                asm.ldx_mem(Size.B, Reg.R0, Reg.R3, 0),
                asm.exit_insn(),
            ],
        )
        assert "invalid mem access" in msg


class TestConstMapPtr:
    def test_map_ptr_deref_rejected(self, patched_kernel):
        fd = patched_kernel.map_create(MapType.HASH, 8, 8, 4)
        msg = reject_msg(
            patched_kernel,
            [
                *asm.ld_map_fd(Reg.R1, fd),
                asm.ldx_mem(Size.DW, Reg.R0, Reg.R1, 0),
                asm.exit_insn(),
            ],
        )
        assert "invalid mem access" in msg
