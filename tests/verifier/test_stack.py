"""Stack-slot tracking tests."""

from __future__ import annotations

import pytest

from repro.verifier.stack import SlotType, StackState, STACK_SIZE
from repro.verifier.state import RegState, RegType


class TestBounds:
    @pytest.mark.parametrize("off,size,ok", [
        (-8, 8, True),
        (-512, 8, True),
        (-512, 512, True),
        (-1, 1, True),
        (0, 1, False),
        (-513, 8, False),
        (-8, 16, False),
        (-520, 4, False),
    ])
    def test_in_bounds(self, off, size, ok):
        assert StackState.in_bounds(off, size) == ok


class TestReadsWrites:
    def test_uninitialised_read_rejected(self):
        stack = StackState()
        reg, error = stack.read(-8, 8)
        assert reg is None
        assert "uninitialised" in error

    def test_misc_write_then_read(self):
        stack = StackState()
        stack.write_misc(-8, 8)
        reg, error = stack.read(-8, 8)
        assert error == ""
        assert reg.is_scalar() and not reg.is_const()

    def test_zero_write_reads_const_zero(self):
        stack = StackState()
        stack.write_misc(-8, 8, zero=True)
        reg, _ = stack.read(-8, 8)
        assert reg.is_const() and reg.const_value() == 0

    def test_partial_read_of_initialised(self):
        stack = StackState()
        stack.write_misc(-8, 8)
        reg, error = stack.read(-5, 2)
        assert error == ""

    def test_partial_read_straddling_uninit(self):
        stack = StackState()
        stack.write_misc(-8, 4)
        _, error = stack.read(-8, 8)
        assert error

    def test_depth_tracking(self):
        stack = StackState()
        stack.write_misc(-64, 8)
        assert stack.depth == 64
        stack.write_misc(-8, 8)
        assert stack.depth == 64


class TestSpills:
    def test_spill_fill_preserves_pointer(self):
        stack = StackState()
        ptr = RegState.pointer(RegType.PTR_TO_MAP_VALUE)
        ptr.off = 16
        stack.write_reg(-8, ptr)
        reg, error = stack.read(-8, 8)
        assert error == ""
        assert reg.type == RegType.PTR_TO_MAP_VALUE
        assert reg.off == 16

    def test_partial_overwrite_degrades_spill(self):
        stack = StackState()
        stack.write_reg(-8, RegState.pointer(RegType.PTR_TO_STACK))
        stack.write_misc(-5, 1)
        reg, error = stack.read(-8, 8)
        assert error == ""
        assert reg.is_scalar()  # no longer the pointer

    def test_unaligned_read_of_spill_is_scalar(self):
        stack = StackState()
        stack.write_reg(-8, RegState.pointer(RegType.PTR_TO_STACK))
        reg, error = stack.read(-8, 4)
        assert error == ""
        assert reg.is_scalar()

    def test_spilled_reg_accessor(self):
        stack = StackState()
        stack.write_reg(-16, RegState.const_scalar(5))
        assert stack.spilled_reg(-16).const_value() == 5
        assert stack.spilled_reg(-8) is None


class TestRegions:
    def test_region_initialized_check(self):
        stack = StackState()
        stack.write_misc(-16, 16)
        assert stack.check_region_initialized(-16, 16) == ""
        assert stack.check_region_initialized(-24, 16) != ""

    def test_mark_region_written(self):
        stack = StackState()
        stack.mark_region_written(-32, 32)
        assert stack.check_region_initialized(-32, 32) == ""


class TestClone:
    def test_clone_independent(self):
        stack = StackState()
        stack.write_reg(-8, RegState.const_scalar(1))
        copy = stack.clone()
        copy.write_misc(-8, 8)
        assert stack.spilled_reg(-8) is not None
        assert copy.spilled_reg(-8) is None
