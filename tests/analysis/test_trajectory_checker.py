"""CI bench-trajectory gate: regression detection and skip paths."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_CHECKER = (Path(__file__).resolve().parents[2] / "benchmarks"
            / "check_throughput_trajectory.py")


@pytest.fixture(scope="module")
def checker():
    spec = importlib.util.spec_from_file_location("trajectory", _CHECKER)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def write_bench(path: Path, programs_per_sec: float,
                flight_overhead: float | None = None,
                profile_overhead: float | None = None,
                repair_overhead: float | None = None,
                repair_rate: float | None = None) -> str:
    payload = {
        "parallel": {"programs_per_sec": programs_per_sec},
        "serial": {"programs_per_sec": programs_per_sec / 2},
    }
    if flight_overhead is not None:
        payload["flight_recorder"] = {
            "disabled_overhead": flight_overhead,
            "disabled_overhead_budget": 0.05,
        }
    if profile_overhead is not None:
        payload["profiler"] = {
            "disabled_overhead": profile_overhead,
            "disabled_overhead_budget": 0.05,
        }
    if repair_overhead is not None or repair_rate is not None:
        payload["repair_feedback"] = {
            "disabled_overhead_budget": 0.05,
        }
        if repair_overhead is not None:
            payload["repair_feedback"]["disabled_overhead"] = repair_overhead
        if repair_rate is not None:
            payload["repair_feedback"]["verified_rate"] = repair_rate
    path.write_text(json.dumps(payload))
    return str(path)


def test_within_tolerance_passes(checker, tmp_path):
    prev = write_bench(tmp_path / "prev.json", 100.0)
    cur = write_bench(tmp_path / "cur.json", 80.0)
    assert checker.main(["--previous", prev, "--current", cur]) == 0


def test_large_regression_fails(checker, tmp_path):
    prev = write_bench(tmp_path / "prev.json", 100.0)
    cur = write_bench(tmp_path / "cur.json", 60.0)
    assert checker.main(["--previous", prev, "--current", cur]) == 1


def test_missing_previous_skips(checker, tmp_path):
    cur = write_bench(tmp_path / "cur.json", 60.0)
    missing = str(tmp_path / "nope.json")
    assert checker.main(["--previous", missing, "--current", cur]) == 0


def test_missing_current_fails(checker, tmp_path):
    prev = write_bench(tmp_path / "prev.json", 100.0)
    missing = str(tmp_path / "nope.json")
    assert checker.main(["--previous", prev, "--current", missing]) == 1


def test_flat_payload_accepted(checker, tmp_path):
    # Older artifacts without the parallel/serial split still load.
    flat = tmp_path / "flat.json"
    flat.write_text(json.dumps({"programs_per_sec": 42.0}))
    value, _ = checker.load_programs_per_sec(str(flat))
    assert value == 42.0


def test_flight_overhead_within_budget_passes(checker, tmp_path):
    prev = write_bench(tmp_path / "prev.json", 100.0)
    cur = write_bench(tmp_path / "cur.json", 100.0, flight_overhead=0.03)
    assert checker.main(["--previous", prev, "--current", cur]) == 0


def test_flight_overhead_over_budget_fails(checker, tmp_path):
    prev = write_bench(tmp_path / "prev.json", 100.0)
    cur = write_bench(tmp_path / "cur.json", 100.0, flight_overhead=0.08)
    assert checker.main(["--previous", prev, "--current", cur]) == 1


def test_flight_overhead_gate_needs_no_previous(checker, tmp_path):
    # The gate is absolute (in-process baseline), so it must fire even
    # on the first run of a branch, where the regression gate skips.
    missing = str(tmp_path / "nope.json")
    cur = write_bench(tmp_path / "cur.json", 100.0, flight_overhead=0.20)
    assert checker.main(["--previous", missing, "--current", cur]) == 1


def test_flight_overhead_missing_skips(checker, tmp_path):
    prev = write_bench(tmp_path / "prev.json", 100.0)
    cur = write_bench(tmp_path / "cur.json", 100.0)
    assert checker.main(["--previous", prev, "--current", cur]) == 0


def test_flight_overhead_custom_budget(checker, tmp_path):
    prev = write_bench(tmp_path / "prev.json", 100.0)
    cur = write_bench(tmp_path / "cur.json", 100.0, flight_overhead=0.08)
    assert checker.main(["--previous", prev, "--current", cur,
                         "--max-flight-overhead", "0.10"]) == 0


def test_profile_overhead_within_budget_passes(checker, tmp_path):
    prev = write_bench(tmp_path / "prev.json", 100.0)
    cur = write_bench(tmp_path / "cur.json", 100.0, profile_overhead=0.03)
    assert checker.main(["--previous", prev, "--current", cur]) == 0


def test_profile_overhead_over_budget_fails(checker, tmp_path):
    prev = write_bench(tmp_path / "prev.json", 100.0)
    cur = write_bench(tmp_path / "cur.json", 100.0, profile_overhead=0.08)
    assert checker.main(["--previous", prev, "--current", cur]) == 1


def test_profile_overhead_gate_needs_no_previous(checker, tmp_path):
    # Same absolute gate as the flight recorder: fires even on a
    # branch's first run.
    missing = str(tmp_path / "nope.json")
    cur = write_bench(tmp_path / "cur.json", 100.0, profile_overhead=0.20)
    assert checker.main(["--previous", missing, "--current", cur]) == 1


def test_profile_overhead_custom_budget(checker, tmp_path):
    prev = write_bench(tmp_path / "prev.json", 100.0)
    cur = write_bench(tmp_path / "cur.json", 100.0, profile_overhead=0.08)
    assert checker.main(["--previous", prev, "--current", cur,
                         "--max-profile-overhead", "0.10"]) == 0


def test_repair_overhead_over_budget_fails(checker, tmp_path):
    # Absolute gate, needs no previous artifact.
    missing = str(tmp_path / "nope.json")
    cur = write_bench(tmp_path / "cur.json", 100.0, repair_overhead=0.08)
    assert checker.main(["--previous", missing, "--current", cur]) == 1


def test_repair_overhead_within_budget_passes(checker, tmp_path):
    prev = write_bench(tmp_path / "prev.json", 100.0)
    cur = write_bench(tmp_path / "cur.json", 100.0, repair_overhead=0.03)
    assert checker.main(["--previous", prev, "--current", cur]) == 0


def test_repair_rate_small_drop_passes(checker, tmp_path):
    # 0.90 -> 0.80 is an 11% relative drop, inside the 20% default.
    prev = write_bench(tmp_path / "prev.json", 100.0,
                       repair_overhead=0.0, repair_rate=0.90)
    cur = write_bench(tmp_path / "cur.json", 100.0,
                      repair_overhead=0.0, repair_rate=0.80)
    assert checker.main(["--previous", prev, "--current", cur]) == 0


def test_repair_rate_large_drop_fails(checker, tmp_path):
    # 0.90 -> 0.50 is a 44% relative drop.
    prev = write_bench(tmp_path / "prev.json", 100.0,
                       repair_overhead=0.0, repair_rate=0.90)
    cur = write_bench(tmp_path / "cur.json", 100.0,
                      repair_overhead=0.0, repair_rate=0.50)
    assert checker.main(["--previous", prev, "--current", cur]) == 1


def test_repair_rate_missing_skips(checker, tmp_path):
    prev = write_bench(tmp_path / "prev.json", 100.0)
    cur = write_bench(tmp_path / "cur.json", 100.0)
    assert checker.main(["--previous", prev, "--current", cur]) == 0


def test_repair_rate_custom_threshold(checker, tmp_path):
    prev = write_bench(tmp_path / "prev.json", 100.0,
                       repair_overhead=0.0, repair_rate=0.90)
    cur = write_bench(tmp_path / "cur.json", 100.0,
                      repair_overhead=0.0, repair_rate=0.50)
    assert checker.main(["--previous", prev, "--current", cur,
                         "--max-repair-rate-drop", "0.50"]) == 0


def test_repair_rate_zero_previous_skips(checker, tmp_path):
    prev = write_bench(tmp_path / "prev.json", 100.0,
                       repair_overhead=0.0, repair_rate=0.0)
    cur = write_bench(tmp_path / "cur.json", 100.0,
                      repair_overhead=0.0, repair_rate=0.0)
    assert checker.main(["--previous", prev, "--current", cur]) == 0
