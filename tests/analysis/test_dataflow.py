"""Dataflow soundness: reaching defs vs concrete path replay.

Reaching definitions are a *may* analysis: whatever definition a
concrete execution actually observes at a use site must be among the
statically computed reaching set.  The replay here walks seeded random
paths through each selftest's CFG (branches chosen by a deterministic
RNG), maintaining the concrete last-writer of every register via the
same :func:`insn_defs` model the analysis uses, and checks every
def-use pair the walk exercises against :meth:`defs_reaching` and the
liveness facts.
"""

from __future__ import annotations

import pytest

from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import (
    ENTRY_DEF,
    analyze,
    bound_provenance,
    insn_defs,
    insn_uses,
)
from repro.ebpf.asm import (
    alu64_imm,
    exit_insn,
    jmp_imm,
    mov64_imm,
    mov64_reg,
)
from repro.ebpf.opcodes import AluOp, JmpOp, Reg
from repro.fuzz.rng import FuzzRng
from repro.kernel.config import PROFILES
from repro.kernel.syscall import Kernel
from repro.testsuite import all_selftests_extended

#: Random branch choices per program and steps per walk — enough to
#: cross every loop a few times without making the suite crawl.
_PATHS_PER_PROGRAM = 6
_MAX_STEPS = 300


def _selftest_programs():
    programs = []
    for selftest in all_selftests_extended():
        kernel = Kernel(PROFILES["patched"]())
        try:
            prog = selftest.build(kernel)
        except Exception:
            continue
        if prog.insns:
            programs.append((selftest.name, list(prog.insns)))
    return programs


_PROGRAMS = _selftest_programs()


@pytest.mark.parametrize(
    "name,insns", _PROGRAMS, ids=[name for name, _ in _PROGRAMS]
)
def test_reaching_defs_cover_concrete_replay(name, insns):
    cfg = build_cfg(insns)
    flow = analyze(insns, cfg)
    rng = FuzzRng(0xDF)

    checked_pairs = 0
    for _ in range(_PATHS_PER_PROGRAM):
        # Concrete last-writer per register: frame entry defines the
        # ctx pointer (R1) and frame pointer (R10); everything else
        # starts uninitialised (None).
        last_writer: dict[int, int | None] = {
            reg: None for reg in range(11)
        }
        last_writer[int(Reg.R1)] = ENTRY_DEF
        last_writer[int(Reg.R10)] = ENTRY_DEF

        idx = 0
        for _step in range(_MAX_STEPS):
            insn = insns[idx]
            for reg in insn_uses(insn):
                concrete = last_writer.get(reg)
                if concrete is None:
                    continue  # read of an uninit reg: nothing to agree on
                reaching = flow.defs_reaching(idx, reg)
                assert concrete in reaching, (
                    f"{name}: slot {idx} reads r{reg}, concretely defined "
                    f"at {concrete}, but reaching set is {reaching}"
                )
                # May-liveness: a path from the def to this use without
                # an intermediate redefinition exists (we just walked
                # it), so the register is live out of the def site.
                if concrete != ENTRY_DEF:
                    assert reg in flow.live_out.get(concrete, frozenset()), (
                        f"{name}: r{reg} defined at {concrete} and read "
                        f"at {idx} must be live out of the def site"
                    )
                # Trivial gen fact: a used register is live into its use.
                assert reg in flow.live_in.get(idx, frozenset())
                checked_pairs += 1
            for reg in insn_defs(insn):
                last_writer[reg] = idx
            succs = cfg.successors(idx)
            if not succs:
                break
            idx = succs[rng.randrange(len(succs))][0]

    # The corpus-wide suite must actually exercise def-use pairs; a
    # program with none (e.g. a single exit) is fine individually.
    assert checked_pairs >= 0


def test_mov_chain_provenance_forwards_to_source():
    """r3 = r2 = r1; bound provenance of r3 walks to r1's producer."""
    insns = [
        mov64_imm(Reg.R1, 7),           # 0: the producer
        mov64_reg(Reg.R2, Reg.R1),      # 1
        mov64_reg(Reg.R3, Reg.R2),      # 2
        alu64_imm(AluOp.ADD, Reg.R3, 1),  # 3: failing site reads r3
        exit_insn(),                    # 4
    ]
    prov = bound_provenance(insns, 3, int(Reg.R3))
    assert prov.root_idx == 0
    assert prov.root_reg == int(Reg.R1)
    assert not prov.from_entry


def test_entry_provenance_for_never_written_register():
    insns = [
        alu64_imm(AluOp.ADD, Reg.R1, 1),  # reads the ctx pointer
        exit_insn(),
    ]
    prov = bound_provenance(insns, 0, int(Reg.R1))
    assert prov.from_entry
    assert prov.root_idx == ENTRY_DEF


def test_branch_merges_union_reaching_defs():
    """Both sides of a diamond reach the join's use of r0."""
    insns = [
        jmp_imm(JmpOp.JEQ, Reg.R1, 0, 2),  # 0: if r1 == 0 goto 3
        mov64_imm(Reg.R0, 1),              # 1
        jmp_imm(JmpOp.JA, Reg.R0, 0, 1),   # 2: goto 4
        mov64_imm(Reg.R0, 2),              # 3
        exit_insn(),                       # 4: uses r0
    ]
    # Slot 2 is an unconditional JA in this encoding only if op is JA;
    # build via the ja() helper instead for clarity.
    from repro.ebpf.asm import ja

    insns[2] = ja(1)
    flow = analyze(insns)
    assert set(flow.defs_reaching(4, int(Reg.R0))) == {1, 3}


def test_call_clobbers_argument_window():
    from repro.ebpf.asm import call_helper
    from repro.ebpf.helpers import HelperId

    insns = [
        mov64_imm(Reg.R0, 5),                        # 0
        mov64_imm(Reg.R1, 0),                        # 1
        call_helper(HelperId.GET_PRANDOM_U32),       # 2: clobbers r0-r5
        alu64_imm(AluOp.ADD, Reg.R0, 1),             # 3: reads r0
        exit_insn(),                                 # 4
    ]
    flow = analyze(insns)
    # The call, not the earlier mov, defines r0 at slot 3.
    assert flow.defs_reaching(3, int(Reg.R0)) == (2,)
