"""Analysis-layer tests: curves, summaries, bug tables, overhead."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.analysis.reports import CVE_ROW, TABLE2_ROWS, render_bug_table
from repro.analysis.stats import (
    OverheadStats,
    ThroughputStats,
    acceptance_summary,
    average_curves,
    coverage_improvement,
)
from repro.fuzz.campaign import CampaignConfig, CampaignResult
from repro.fuzz.oracle import BugFinding
from repro.kernel.config import Flaw


class TestCurves:
    def test_average_pointwise(self):
        curves = [
            [(0, 0), (10, 100), (20, 200)],
            [(0, 10), (10, 110), (20, 210)],
        ]
        assert average_curves(curves) == [(0, 5.0), (10, 105.0), (20, 205.0)]

    def test_truncates_to_common_prefix(self):
        curves = [[(0, 1), (10, 2)], [(0, 3)]]
        assert average_curves(curves) == [(0, 2.0)]

    def test_empty(self):
        assert average_curves([]) == []

    def test_realigns_mismatched_grids(self, caplog):
        # Shards sampled on different x grids: average over the shared
        # x values instead of silently zipping mismatched points.
        curves = [
            [(0, 0), (5, 50), (10, 100), (20, 200)],
            [(0, 10), (10, 110), (15, 160), (20, 210)],
        ]
        with caplog.at_level("WARNING", logger="repro.analysis"):
            averaged = average_curves(curves)
        assert averaged == [(0, 5.0), (10, 105.0), (20, 205.0)]
        # The drop is logged, never silent.
        assert any("dropping" in rec.getMessage() for rec in caplog.records)

    def test_disjoint_grids_raise(self):
        with pytest.raises(ValueError, match="share no x values"):
            average_curves([[(0, 1)], [(5, 2)]])

    def test_duplicate_x_collapses_to_last_sample(self):
        # Shard-merged curves repeat x=0 once per shard; the last
        # sample wins and no spurious drop warning fires.
        curves = [[(0, 1), (0, 3), (10, 5)], [(0, 7), (10, 9)]]
        assert average_curves(curves) == [(0, 5.0), (10, 7.0)]


class TestImprovement:
    def test_positive(self):
        assert coverage_improvement(120, 100) == pytest.approx(20.0)

    def test_paper_table3_values(self):
        # The paper's overall row: BVF 60905 vs Syzkaller 50062 and
        # Buzzer 9502 — the improvements it headlines.
        assert coverage_improvement(60905, 50062) == pytest.approx(21.66, abs=0.1)
        assert coverage_improvement(60905, 9502) == pytest.approx(541.0, abs=1.0)

    def test_zero_baseline(self):
        assert coverage_improvement(10, 0) == float("inf")


class TestAcceptanceSummary:
    def test_aggregation(self):
        r1 = CampaignResult(config=CampaignConfig(), generated=100, accepted=50,
                            reject_errnos=Counter({13: 40, 22: 10}))
        r2 = CampaignResult(config=CampaignConfig(), generated=100, accepted=70,
                            reject_errnos=Counter({13: 30}))
        summary = acceptance_summary([r1, r2])
        assert summary["generated"] == 200
        assert summary["acceptance_rate"] == pytest.approx(0.6)
        assert summary["reject_errnos"][13] == 70


class TestOverheadStats:
    def test_ratios(self):
        stats = OverheadStats(
            programs=2,
            raw_insns=100,
            sanitized_insns=300,
            raw_executed=50,
            sanitized_executed=120,
            raw_seconds=1.0,
            sanitized_seconds=1.9,
        )
        assert stats.footprint_ratio == pytest.approx(3.0)
        assert stats.executed_ratio == pytest.approx(2.4)
        assert stats.slowdown_percent == pytest.approx(90.0)

    def test_empty_safe(self):
        stats = OverheadStats()
        assert stats.footprint_ratio == 0.0
        assert stats.slowdown_percent == 0.0


class TestThroughputStats:
    def test_derived_metrics(self):
        stats = ThroughputStats(
            programs=300,
            wall_seconds=2.0,
            generate_seconds=0.5,
            verify_seconds=4.0,
            execute_seconds=0.5,
        )
        assert stats.programs_per_sec == pytest.approx(150.0)
        assert stats.busy_seconds == pytest.approx(5.0)
        assert stats.verify_fraction == pytest.approx(0.8)
        assert stats.execute_fraction == pytest.approx(0.1)
        assert stats.parallelism == pytest.approx(2.5)

    def test_empty_safe(self):
        stats = ThroughputStats()
        assert stats.programs_per_sec == 0.0
        assert stats.verify_fraction == 0.0
        assert stats.parallelism == 0.0

    def test_from_result_and_as_dict(self):
        result = CampaignResult(
            config=CampaignConfig(budget=10),
            generated=10,
            generate_seconds=0.1,
            verify_seconds=0.7,
            execute_seconds=0.2,
            wall_seconds=1.0,
        )
        stats = ThroughputStats.from_result(result)
        assert stats.programs == 10
        payload = stats.as_dict()
        assert payload["programs_per_sec"] == pytest.approx(10.0)
        assert payload["verify_fraction"] == pytest.approx(0.7)
        import json

        json.dumps(payload)  # BENCH_throughput.json must serialise

    def test_campaign_populates_timing(self):
        from repro.fuzz.campaign import Campaign

        result = Campaign(CampaignConfig(tool="bvf", budget=15, seed=1)).run()
        stats = ThroughputStats.from_result(result)
        assert stats.wall_seconds > 0
        assert stats.verify_seconds > 0
        assert stats.busy_seconds <= stats.wall_seconds * 1.05


class TestBugTable:
    def test_rows_cover_table2(self):
        assert len(TABLE2_ROWS) == 11
        assert TABLE2_ROWS[0].flaw == Flaw.NULLNESS_PROPAGATION
        assert TABLE2_ROWS[10].flaw == Flaw.XDP_DEV_HOST
        assert CVE_ROW.flaw == Flaw.CVE_2022_23222

    def test_render_marks_found(self):
        findings = {
            Flaw.SIGNAL_PANIC.value: BugFinding(
                bug_id=Flaw.SIGNAL_PANIC.value,
                indicator="indicator2",
                report_kind="panic",
                message="m",
            )
        }
        table = render_bug_table(findings)
        lines = table.splitlines()
        bug6_line = next(l for l in lines if l.startswith(" 6"))
        assert " yes " in bug6_line
        bug1_line = next(l for l in lines if l.startswith(" 1"))
        assert " no " in bug1_line

    def test_render_lists_extras(self):
        findings = {
            "lockdep:weird": BugFinding(
                bug_id="lockdep:weird",
                indicator="indicator2",
                report_kind="lockdep",
                message="m",
            )
        }
        table = render_bug_table(findings)
        assert "lockdep:weird" in table
