"""CFG well-formedness properties over the whole selftest corpus.

The repair layer analyzes exactly the programs the verifier rejects,
so :func:`repro.analysis.cfg.build_cfg` must be *total*: every
selftest — accepted or rejected, well-formed or deliberately broken —
must produce a CFG where

- there is a single entry block starting at slot 0;
- every slot belongs to exactly one block (blocks partition the
  program);
- block-internal slots fall straight through (no leader in the
  middle of a block);
- every recorded edge matches the interpreter's successor semantics,
  derived independently from the dispatch metadata the interpreter
  executes from.
"""

from __future__ import annotations

import pytest

from repro.analysis.cfg import (
    EDGE_CALL,
    EDGE_FALL,
    build_cfg,
    insn_successors,
)
from repro.kernel.config import PROFILES
from repro.kernel.syscall import Kernel
from repro.runtime.interpreter import (
    _K_CALL_PSEUDO,
    _K_COND_JMP,
    _K_EXIT,
    _K_FILLER,
    _K_JA,
    _K_LD_IMM64,
    _build_exec_meta,
)
from repro.testsuite import all_selftests_extended


def _selftest_programs():
    """(name, insns) for every selftest whose program builds."""
    programs = []
    for selftest in all_selftests_extended():
        kernel = Kernel(PROFILES["patched"]())
        try:
            prog = selftest.build(kernel)
        except Exception:
            continue
        programs.append((selftest.name, list(prog.insns)))
    return programs


_PROGRAMS = _selftest_programs()


def _interp_successors(insns, idx) -> set[int]:
    """Successor slots per the interpreter's dispatch metadata.

    Independent of the CFG module: derived from the same
    ``_build_exec_meta`` table ``Interpreter._run_loop`` switches on,
    so agreement here means the static CFG and the dynamic execution
    engine share one notion of control flow.  The pseudo-call return
    edge (``idx + 1`` via the frame stack) is included because the
    CFG models returning calls with a fall-through edge.
    """
    meta = _build_exec_meta(insns)
    kind, a, _ = meta[idx]
    if kind == _K_EXIT:
        return set()
    if kind == _K_JA:
        return {idx + a}
    if kind == _K_COND_JMP:
        return {idx + 1, idx + insns[idx].off + 1}
    if kind == _K_LD_IMM64:
        return {idx + 2}
    if kind == _K_CALL_PSEUDO:
        return {idx + a + 1, idx + 1}
    # ALU / load / store / atomic / filler / helper-style calls.
    return {idx + 1}


def test_corpus_is_nontrivial():
    assert len(_PROGRAMS) > 100


@pytest.mark.parametrize(
    "name,insns", _PROGRAMS, ids=[name for name, _ in _PROGRAMS]
)
def test_cfg_well_formed(name, insns):
    cfg = build_cfg(insns)

    if not insns:
        # The deliberately-empty selftest: no blocks, but still a CFG.
        assert cfg.blocks == []
        return

    # Single entry at slot 0.
    assert cfg.entry.start == 0
    assert cfg.blocks[0] is cfg.entry

    # Blocks partition the slot range [start, end), in order, no gaps.
    covered = []
    for block in cfg.blocks:
        assert block.start < block.end
        covered.extend(block.slots())
    assert covered == list(range(len(insns)))

    # block_of is the inverse of the partition.
    for block in cfg.blocks:
        for slot in block.slots():
            assert cfg.block_of(slot) is block

    # No slot strictly inside a block starts another block.
    starts = {block.start for block in cfg.blocks}
    for block in cfg.blocks:
        for slot in range(block.start + 1, block.end):
            assert slot not in starts


@pytest.mark.parametrize(
    "name,insns", _PROGRAMS, ids=[name for name, _ in _PROGRAMS]
)
def test_cfg_edges_match_interpreter_semantics(name, insns):
    cfg = build_cfg(insns)
    invalid = {(src, dst) for src, dst, _ in cfg.invalid_edges}

    for block in cfg.blocks:
        term = block.end - 1
        while term > block.start and insns[term].is_filler():
            # A block ending in a filler is the tail of an LD_IMM64;
            # its semantics live at the first half.
            term -= 1
        insn = insns[term]
        if insn.is_filler():
            continue  # all-filler block: dead, no edges to check
        expected = _interp_successors(insns, term)
        # The CFG records only in-range targets; out-of-range or
        # into-filler targets land in invalid_edges instead.
        valid_expected = {
            target for target in expected
            if 0 <= target < len(insns) and not insns[target].is_filler()
        }
        got = {target for target, _ in cfg.successors(term)}
        assert got == valid_expected, (
            f"{name}: slot {term} CFG successors {sorted(got)} != "
            f"interpreter successors {sorted(valid_expected)}"
        )
        for target in expected - valid_expected:
            assert (term, target) in invalid, (
                f"{name}: invalid target {target} of slot {term} "
                f"not recorded in invalid_edges"
            )

    # Block-level succ/pred lists must mirror each other.
    for block in cfg.blocks:
        for succ_index, _kind in block.succ:
            assert block.index in cfg.blocks[succ_index].pred
        for pred_index in block.pred:
            pred = cfg.blocks[pred_index]
            assert any(s == block.index for s, _ in pred.succ)


def test_insn_successors_reports_invalid_targets():
    """Raw successor enumeration includes out-of-range targets."""
    from repro.ebpf.asm import exit_insn, ja, mov64_imm
    from repro.ebpf.opcodes import Reg

    insns = [mov64_imm(Reg.R0, 0), ja(5), exit_insn()]
    succ = insn_successors(insns, 1)
    assert (7, "jump") in [(t, k) for t, k in succ]
    cfg = build_cfg(insns)
    assert any(src == 1 and dst == 7 for src, dst, _ in cfg.invalid_edges)
    assert cfg.successors(1) == []
