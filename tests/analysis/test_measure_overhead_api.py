"""API test for the public overhead-measurement helper."""

from __future__ import annotations

from repro.analysis.stats import measure_overhead
from repro.kernel.config import PROFILES
from repro.kernel.syscall import Kernel
from repro.ebpf import asm
from repro.ebpf.opcodes import AluOp, Reg, Size
from repro.ebpf.program import BpfProgram


def _programs():
    # A program whose accesses go through a copied frame pointer, so
    # the sanitizer instruments them (R10-based would be skipped).
    return [
        BpfProgram(
            insns=[
                asm.mov64_reg(Reg.R1, Reg.R10),
                asm.alu64_imm(AluOp.ADD, Reg.R1, -8),
                asm.st_mem(Size.DW, Reg.R1, 0, 7),
                asm.ldx_mem(Size.DW, Reg.R0, Reg.R1, 0),
                asm.exit_insn(),
            ],
            name=f"overhead_{i}",
        )
        for i in range(4)
    ]


def test_measure_overhead_end_to_end():
    stats = measure_overhead(
        lambda: Kernel(PROFILES["patched"]()),
        _programs(),
        repeats=2,
        runs_per_program=2,
    )
    assert stats.programs == 4
    assert stats.sanitized_insns > stats.raw_insns
    assert stats.footprint_ratio > 1.5
    assert stats.executed_ratio > 1.0
    assert stats.raw_seconds > 0 and stats.sanitized_seconds > 0
