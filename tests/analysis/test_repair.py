"""Repair synthesizer: verified reject→accept flips over the corpus.

The acceptance bar from the issue: at least 40% of rejected selftest
programs must receive a verified minimal patch, every reported repair
must actually re-verify (no "plausible" repairs), and repair artifacts
must be bit-identical for workers=1 vs 4.
"""

from __future__ import annotations

import json

from repro.analysis.repair import propose_repairs, synthesize_repair
from repro.ebpf.program import BpfProgram
from repro.errors import BpfError, VerifierReject
from repro.fuzz.campaign import CampaignConfig
from repro.fuzz.parallel import ParallelCampaign
from repro.kernel.config import PROFILES
from repro.kernel.syscall import Kernel
from repro.obs.artifact import build_artifact, strip_wall
from repro.obs.explain import build_selftest, explain_program
from repro.testsuite import all_selftests_extended

#: Issue acceptance floor: fraction of rejected selftests that must
#: receive a verified repair.
MIN_VERIFIED_RATE = 0.40


def _rejected_selftests():
    """(name, prog, explanation) for every selftest 'patched' rejects."""
    rejected = []
    for selftest in all_selftests_extended():
        kernel = Kernel(PROFILES["patched"]())
        try:
            prog = selftest.build(kernel)
        except Exception:
            continue
        if not prog.insns:
            continue
        explanation = explain_program(kernel, prog, sanitize=False)
        if explanation is not None:
            rejected.append((selftest.name, prog, explanation))
    return rejected


def test_verified_repair_rate_over_rejected_corpus():
    rejected = _rejected_selftests()
    assert len(rejected) >= 20, "corpus must produce rejections to repair"

    verified = []
    for name, prog, explanation in rejected:
        kernel = Kernel(PROFILES["patched"]())
        repair = synthesize_repair(
            kernel, prog,
            reason=explanation.reason,
            message=explanation.message,
            insn_idx=explanation.insn_idx,
        )
        if repair is not None:
            verified.append((name, prog, repair))

    rate = len(verified) / len(rejected)
    print(f"\nverified repairs: {len(verified)}/{len(rejected)} "
          f"({rate:.1%})")
    assert rate >= MIN_VERIFIED_RATE, (
        f"verified repair rate {rate:.1%} below the "
        f"{MIN_VERIFIED_RATE:.0%} floor"
    )

    # Every reported repair must *independently* re-verify: load the
    # patched program on a fresh kernel and expect acceptance.
    for name, prog, repair in verified:
        fresh = Kernel(PROFILES["patched"]())
        patched = BpfProgram(
            insns=list(repair.patched),
            prog_type=prog.prog_type,
            name=f"{name}+reverify",
        )
        try:
            fresh.prog_load(patched)
        except (VerifierReject, BpfError) as exc:
            raise AssertionError(
                f"{name}: reported repair [{repair.template}] does not "
                f"re-verify: {exc}"
            ) from exc
        # A repair of a rejected program must actually change it.
        assert repair.patched != repair.original
        assert repair.edit_distance >= 1


def test_repair_candidates_are_deduped_and_ordered():
    rejected = _rejected_selftests()
    for name, prog, explanation in rejected[:25]:
        candidates = propose_repairs(
            list(prog.insns),
            explanation.reason,
            explanation.message,
            explanation.insn_idx,
        )
        # Sorted by (edit distance, template order): never a cheaper
        # candidate after a more expensive one.
        distances = [c.edit_distance for c in candidates]
        assert distances == sorted(distances), name
        # No duplicate patched programs.
        seen = set()
        for candidate in candidates:
            key = tuple(
                (i.opcode, i.dst, i.src, i.off, i.imm)
                for i in candidate.insns
            )
            assert key not in seen, f"{name}: duplicate candidate"
            seen.add(key)


def test_repair_to_dict_is_wall_free_and_deterministic():
    rejected = _rejected_selftests()
    name, prog, explanation = rejected[0]

    def run():
        kernel = Kernel(PROFILES["patched"]())
        repair = synthesize_repair(
            kernel, prog,
            reason=explanation.reason,
            message=explanation.message,
            insn_idx=explanation.insn_idx,
        )
        assert repair is not None
        return repair.to_dict()

    first, second = run(), run()
    assert first == second
    payload = json.dumps(first)
    for field in ("seconds", "wall", "time"):
        assert field not in payload


def test_repair_artifacts_worker_invariant():
    """workers=1 vs 4: the repair section must merge bit-identically."""

    def run(workers: int) -> dict:
        config = CampaignConfig(
            tool="bvf", kernel_version="bpf-next", budget=90,
            seed=11, sanitize=True, repair_feedback=True,
        )
        result = ParallelCampaign(config, workers=workers, shards=3).run()
        return strip_wall(build_artifact(result))

    serial, parallel = run(1), run(4)
    assert serial["repair"] == parallel["repair"]
    assert serial["repair"]["enabled"] is True
    assert serial["repair"]["attempted"] > 0
    assert serial["repair"]["verified"] > 0
    # The whole stripped artifact stays invariant with repairs on.
    assert json.dumps(serial, sort_keys=True) == \
        json.dumps(parallel, sort_keys=True)


def test_repair_feedback_grows_corpus_deterministically():
    """Verified repairs enter the corpus under origin bvf-repair."""
    from repro.fuzz.campaign import Campaign

    config = CampaignConfig(
        tool="bvf", kernel_version="bpf-next", budget=60,
        seed=3, sanitize=True, repair_feedback=True,
    )
    campaign = Campaign(config)
    result = campaign.run()
    assert sum(result.repairs_verified.values()) > 0
    origins = {entry.origin for entry in campaign.corpus.entries}
    assert "bvf-repair" in origins


def test_repair_cli_selftest(capsys):
    """`repro repair <rejected selftest>` prints a verified patch."""
    from repro.__main__ import main

    rejected = _rejected_selftests()
    # Pick a deterministic, simple subject: the first rejected name.
    name = rejected[0][0]
    code = main(["repair", name])
    out = capsys.readouterr().out
    assert code == 0
    assert "suggested repair" in out
    assert "patched program (verified accept):" in out

    code = main(["repair", name, "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["template"]
    assert payload["diff"]


def test_repair_cli_accepted_program_exits_nonzero(capsys):
    from repro.__main__ import main

    # Find an accepted selftest.
    accepted_name = None
    for selftest in all_selftests_extended():
        kernel = Kernel(PROFILES["patched"]())
        try:
            prog = selftest.build(kernel)
        except Exception:
            continue
        if not prog.insns:
            continue
        if explain_program(kernel, prog, sanitize=False) is None:
            accepted_name = selftest.name
            break
    assert accepted_name is not None
    code = main(["repair", accepted_name])
    out = capsys.readouterr().out
    assert code == 1
    assert "nothing to repair" in out
