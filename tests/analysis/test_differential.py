"""Cross-version differential oracle: acceptance criteria from Issue 6.

The headline property: run over the seed selftest corpus, the oracle
detects every injected flaw that manifests as a verdict or range
divergence between v5.15 / v6.1 / bpf-next — without executing a single
program — and reports zero unexplained divergences; a pair of flaw-free
profiles produces zero divergences of any kind.

Ground truth is computed independently here (direct ``prog_load`` per
profile), so the tests would catch the oracle both under-reporting
(missing a flip) and over-reporting (inventing one).
"""

from __future__ import annotations

import pytest

from repro.analysis.differential import (
    DEFAULT_PROFILES,
    DifferentialOracle,
    Divergence,
    ProfileOutcome,
    merge_divergences,
)
from repro.errors import BpfError, VerifierReject
from repro.fuzz.oracle import Oracle
from repro.fuzz.structure import ExecutionPlan, GeneratedProgram
from repro.kernel.config import PROFILES, Flaw, pristine
from repro.kernel.syscall import Kernel
from repro.ebpf import asm
from repro.ebpf.helpers import HelperId
from repro.ebpf.kfuncs import KFUNC_RAND
from repro.ebpf.maps import BpfMap, MapType
from repro.ebpf.opcodes import AluOp, JmpOp, Reg, Size
from repro.ebpf.program import BpfProgram, ProgType
from repro.testsuite import all_selftests_extended


def wrap_selftest(selftest) -> GeneratedProgram:
    """Build a selftest on a scratch kernel and lift it to a
    :class:`GeneratedProgram` (maps in fd-creation order, so the
    oracle's replay kernels reproduce the embedded fd layout)."""
    kernel = Kernel(PROFILES["bpf-next"]())
    prog = selftest.build(kernel)
    maps = [obj for obj in kernel._fds.values() if isinstance(obj, BpfMap)]
    return GeneratedProgram(
        insns=list(prog.insns),
        prog_type=prog.prog_type,
        maps=maps,
        plan=ExecutionPlan(),
    )


def direct_verdict(config, gp: GeneratedProgram) -> str:
    """Ground-truth verdict via a plain prog_load, no oracle involved."""
    kernel = Kernel(config)
    for bpf_map in gp.maps:
        kernel.map_create(
            bpf_map.map_type,
            bpf_map.key_size,
            bpf_map.value_size,
            bpf_map.max_entries,
        )
    prog = BpfProgram(insns=list(gp.insns), prog_type=gp.prog_type)
    try:
        kernel.prog_load(prog, sanitize=False)
        return "accept"
    except (VerifierReject, BpfError):
        return "reject"


@pytest.fixture(scope="module")
def corpus():
    return [(st.name, wrap_selftest(st)) for st in all_selftests_extended()]


@pytest.fixture(scope="module")
def corpus_divergences(corpus):
    """name -> list[Divergence] over the three stock profiles."""
    oracle = DifferentialOracle()
    return {name: oracle.run(gp) for name, gp in corpus}


class TestProfileOutcome:
    def test_signature_ignores_profile_name(self):
        a = ProfileOutcome(profile="v5.15", verdict="accept",
                           fingerprint=((1, 2, 3, 4, 5, 6),))
        b = ProfileOutcome(profile="v6.1", verdict="accept",
                           fingerprint=((1, 2, 3, 4, 5, 6),))
        assert a.signature == b.signature

    def test_reject_reason_not_part_of_signature(self):
        # Two profiles rejecting for different stated reasons still
        # agree on the verdict; reason text is diagnostic only.
        a = ProfileOutcome(profile="a", verdict="reject", reason="R_STACK_OOB")
        b = ProfileOutcome(profile="b", verdict="reject", reason="R_UNINIT")
        assert a.signature == b.signature

    def test_fingerprint_differentiates(self):
        a = ProfileOutcome(profile="a", verdict="accept",
                           fingerprint=((0, 4, 0, 4, 4, 0),))
        b = ProfileOutcome(profile="a", verdict="accept",
                           fingerprint=((0, 18446744073709551615, 0, -1, 0,
                                         18446744073709551615),))
        assert a.signature != b.signature


class TestCorpusAcceptance:
    """The Issue-6 acceptance criterion, verified against ground truth."""

    def test_every_verdict_flip_detected(self, corpus, corpus_divergences):
        configs = {name: PROFILES[name]() for name in DEFAULT_PROFILES}
        flips = 0
        for name, gp in corpus:
            verdicts = {
                profile: direct_verdict(config, gp)
                for profile, config in configs.items()
            }
            names = sorted(verdicts)
            reported = {
                (d.profile_a, d.profile_b)
                for d in corpus_divergences[name]
            }
            for i, pa in enumerate(names):
                for pb in names[i + 1:]:
                    if verdicts[pa] == verdicts[pb]:
                        continue
                    flips += 1
                    assert (pa, pb) in reported, (
                        f"{name}: {pa}={verdicts[pa]} vs {pb}={verdicts[pb]} "
                        f"not reported by the oracle"
                    )
        # The corpus must actually exercise the property: the
        # task-struct OOB flaw flips btf_task_oob across versions.
        assert flips > 0

    def test_zero_unexplained_divergences(self, corpus_divergences):
        unexplained = [
            (name, d.key)
            for name, divs in corpus_divergences.items()
            for d in divs
            if d.classification == "unexplained"
        ]
        assert unexplained == []

    def test_every_divergence_classified(self, corpus_divergences):
        allowed = {"known-flaw", "feature-gap", "combined"}
        for divs in corpus_divergences.values():
            for d in divs:
                assert d.classification in allowed

    def test_task_struct_oob_found_as_known_flaw(self, corpus_divergences):
        """The registry-regression half: bug #2 rediscovered statically."""
        divs = corpus_divergences["btf_task_oob"]
        assert divs, "btf_task_oob must diverge across versions"
        explanations = {
            d.explanation for d in divs if d.classification == "known-flaw"
        }
        assert Flaw.TASK_STRUCT_OOB.value in explanations

    def test_no_execution_happened(self, corpus_divergences):
        # Sanity anchor for "without executing a single program": the
        # oracle never constructs an Executor; outcomes carry verifier
        # verdicts only.
        for divs in corpus_divergences.values():
            for d in divs:
                assert d.outcome_a.verdict in ("accept", "reject")
                assert d.outcome_b.verdict in ("accept", "reject")


class TestPristinePair:
    def test_flaw_free_profiles_never_diverge(self, corpus):
        """Two fully-fixed kernels differing only in version string must
        agree on every corpus program — verdicts and range states."""
        oracle = DifferentialOracle(("v6.1", "bpf-next"))
        oracle.configs = {
            "fixed-a": pristine("fixed-a"),
            "fixed-b": pristine("fixed-b"),
        }
        for name, gp in corpus:
            assert oracle.run(gp) == [], name


class TestCveWitness:
    """CVE-2022-23222: v5.15 accepts ALU on a nullable map pointer."""

    def witness(self) -> GeneratedProgram:
        kernel = Kernel(PROFILES["v5.15"]())
        fd = kernel.map_create(MapType.HASH, 8, 16, 4)
        insns = [
            asm.st_mem(Size.DW, Reg.R10, -8, 0),
            *asm.ld_map_fd(Reg.R1, fd),
            asm.mov64_reg(Reg.R2, Reg.R10),
            asm.alu64_imm(AluOp.ADD, Reg.R2, -8),
            asm.call_helper(HelperId.MAP_LOOKUP_ELEM),
            asm.mov64_reg(Reg.R1, Reg.R0),
            asm.alu64_imm(AluOp.ADD, Reg.R1, 8),
            asm.jmp_imm(JmpOp.JEQ, Reg.R1, 0, 2),
            asm.st_mem(Size.DW, Reg.R1, 0, 0x42),
            asm.ja(0),
            asm.mov64_imm(Reg.R0, 0),
            asm.exit_insn(),
        ]
        maps = [obj for obj in kernel._fds.values() if isinstance(obj, BpfMap)]
        return GeneratedProgram(
            insns=insns,
            prog_type=ProgType.SOCKET_FILTER,
            maps=maps,
            plan=ExecutionPlan(),
        )

    def test_verdict_divergence_attributed_to_cve(self):
        oracle = DifferentialOracle(("v5.15", "v6.1"))
        divs = oracle.run(self.witness())
        assert len(divs) == 1
        div = divs[0]
        assert div.kind == "verdict"
        assert {div.outcome_a.verdict, div.outcome_b.verdict} == {
            "accept", "reject"
        }
        assert div.classification == "known-flaw"
        assert div.explanation == Flaw.CVE_2022_23222.value


class TestKfuncBacktrackWitness:
    """Bug #3 manifests as a *range* divergence: both profiles accept,
    but the flawed one keeps stale R0 bounds across the kfunc call."""

    def witness(self) -> GeneratedProgram:
        insns = [
            asm.mov64_imm(Reg.R0, 4),
            asm.call_kfunc(KFUNC_RAND),
            asm.exit_insn(),
        ]
        return GeneratedProgram(
            insns=insns,
            prog_type=ProgType.KPROBE,
            maps=[],
            plan=ExecutionPlan(),
        )

    def test_range_divergence_attributed_to_bug3(self):
        oracle = DifferentialOracle(("v6.1", "bpf-next"))
        divs = oracle.run(self.witness())
        assert len(divs) == 1
        div = divs[0]
        assert div.kind == "range"
        assert div.outcome_a.verdict == div.outcome_b.verdict == "accept"
        assert div.outcome_a.fingerprint != div.outcome_b.fingerprint
        assert div.classification == "known-flaw"
        assert div.explanation == Flaw.KFUNC_BACKTRACK.value


def div_dict(key: str, iteration: int) -> dict:
    return {
        "key": key,
        "kind": "verdict",
        "profile_a": "v5.15",
        "profile_b": "v6.1",
        "verdict_a": "accept",
        "verdict_b": "reject",
        "reason_a": "",
        "reason_b": "R_PTR_ALU",
        "classification": "known-flaw",
        "explanation": "cve-2022-23222",
        "iteration": iteration,
    }


class TestMergeDivergences:
    def test_dedup_keeps_earliest_global_iteration(self):
        merged = merge_divergences(
            [{"k1": div_dict("k1", 40)}, {"k1": div_dict("k1", 7)}]
        )
        assert merged["k1"]["iteration"] == 7

    def test_order_independent(self):
        shards = [
            {"k1": div_dict("k1", 9)},
            {"k1": div_dict("k1", 11), "k2": div_dict("k2", 3)},
        ]
        a = merge_divergences(shards)
        b = merge_divergences(list(reversed(shards)))
        assert a == b

    def test_result_sorted_by_key(self):
        merged = merge_divergences(
            [{"zz": div_dict("zz", 1)}, {"aa": div_dict("aa", 2)}]
        )
        assert list(merged) == ["aa", "zz"]

    def test_empty(self):
        assert merge_divergences([]) == {}


class TestOracleFindingPolicy:
    """How ``Oracle.classify_divergence`` maps divergences to findings."""

    def divergence(self, classification: str, explanation: str) -> Divergence:
        return Divergence(
            kind="verdict",
            profile_a="v5.15",
            profile_b="v6.1",
            outcome_a=ProfileOutcome("v5.15", "accept"),
            outcome_b=ProfileOutcome("v6.1", "reject", reason="R_PTR_ALU"),
            classification=classification,
            explanation=explanation,
            iteration=12,
        )

    def oracle(self) -> Oracle:
        return Oracle(PROFILES["bpf-next"]())

    def test_feature_gap_produces_no_finding(self):
        div = self.divergence("feature-gap", "has_kfuncs")
        assert self.oracle().classify_divergence(div) is None

    def test_known_flaw_maps_to_registry_bug_id(self):
        div = self.divergence("known-flaw", Flaw.CVE_2022_23222.value)
        finding = self.oracle().classify_divergence(div)
        assert finding.bug_id == Flaw.CVE_2022_23222.value
        assert finding.indicator == "differential"
        assert finding.is_verifier_bug

    def test_unexplained_gets_stable_digest_id(self):
        div = self.divergence("unexplained", "outcome not reproduced")
        a = self.oracle().classify_divergence(div)
        b = self.oracle().classify_divergence(div)
        assert a.bug_id == b.bug_id
        assert a.bug_id.startswith("differential:unexplained:v5.15-vs-v6.1:")
