"""CI taxonomy-drift gate: drift detection, UNCLASSIFIED, skip paths."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_CHECKER = (Path(__file__).resolve().parents[2] / "benchmarks"
            / "check_taxonomy_drift.py")


@pytest.fixture(scope="module")
def checker():
    spec = importlib.util.spec_from_file_location("taxonomy_drift", _CHECKER)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def write_bench(path: Path, by_reason: dict[str, int],
                generated: int = 100) -> str:
    path.write_text(json.dumps(
        {"taxonomy": {"generated": generated, "by_reason": by_reason}}
    ))
    return str(path)


def test_identical_distributions_pass(checker, tmp_path):
    prev = write_bench(tmp_path / "prev.json", {"STACK_ACCESS": 20})
    cur = write_bench(tmp_path / "cur.json", {"STACK_ACCESS": 20})
    assert checker.main(["--previous", prev, "--current", cur]) == 0


def test_small_shift_passes(checker, tmp_path):
    prev = write_bench(tmp_path / "prev.json", {"STACK_ACCESS": 20})
    cur = write_bench(tmp_path / "cur.json", {"STACK_ACCESS": 23})
    assert checker.main(["--previous", prev, "--current", cur]) == 0


def test_large_shift_fails(checker, tmp_path):
    prev = write_bench(tmp_path / "prev.json", {"STACK_ACCESS": 20})
    cur = write_bench(tmp_path / "cur.json", {"STACK_ACCESS": 40})
    assert checker.main(["--previous", prev, "--current", cur]) == 1


def test_vanished_reason_fails(checker, tmp_path):
    prev = write_bench(tmp_path / "prev.json", {"STACK_ACCESS": 10})
    cur = write_bench(tmp_path / "cur.json", {})
    assert checker.main(["--previous", prev, "--current", cur]) == 1


def test_new_reason_above_threshold_fails(checker, tmp_path):
    prev = write_bench(tmp_path / "prev.json", {})
    cur = write_bench(tmp_path / "cur.json", {"NEW_REASON": 10})
    assert checker.main(["--previous", prev, "--current", cur]) == 1


def test_threshold_is_configurable(checker, tmp_path):
    prev = write_bench(tmp_path / "prev.json", {"STACK_ACCESS": 20})
    cur = write_bench(tmp_path / "cur.json", {"STACK_ACCESS": 40})
    assert checker.main(["--previous", prev, "--current", cur,
                         "--max-share-shift", "0.5"]) == 0


def test_unclassified_fails_even_without_previous(checker, tmp_path):
    cur = write_bench(tmp_path / "cur.json", {"UNCLASSIFIED": 1})
    assert checker.main(["--previous", str(tmp_path / "none.json"),
                         "--current", cur]) == 1


def test_missing_previous_skips(checker, tmp_path):
    cur = write_bench(tmp_path / "cur.json", {"STACK_ACCESS": 5})
    assert checker.main(["--previous", str(tmp_path / "none.json"),
                         "--current", cur]) == 0


def test_previous_without_taxonomy_section_skips(checker, tmp_path):
    prev = tmp_path / "prev.json"
    prev.write_text(json.dumps({"parallel": {}}))
    cur = write_bench(tmp_path / "cur.json", {"STACK_ACCESS": 5})
    assert checker.main(["--previous", str(prev), "--current", cur]) == 0


def test_missing_current_fails(checker, tmp_path):
    assert checker.main(["--previous", str(tmp_path / "p.json"),
                         "--current", str(tmp_path / "c.json")]) == 1
