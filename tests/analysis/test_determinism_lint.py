"""The determinism lint: catches what it must, passes the real tree."""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

import check_determinism_lint as lint  # noqa: E402


def _write_module(tmp_path: Path, body: str) -> Path:
    root = tmp_path / "pkg"
    for directory in lint.LINTED_DIRS:
        (root / directory).mkdir(parents=True, exist_ok=True)
    module = root / "fuzz" / "mod.py"
    module.write_text(body)
    return root


def test_real_tree_is_clean():
    violations = lint.lint_tree(REPO_ROOT / "src" / "repro")
    assert violations == [], [str(v) for v in violations]
    assert lint.check_allowlist(REPO_ROOT / "src" / "repro") == []


def test_catches_time_time(tmp_path):
    root = _write_module(tmp_path, "import time\nx = time.time()\n")
    rules = {v.rule for v in lint.lint_tree(root)}
    assert rules == {"time.time"}


def test_perf_counter_is_allowed(tmp_path):
    root = _write_module(
        tmp_path, "import time\nx = time.perf_counter()\n")
    assert lint.lint_tree(root) == []


def test_catches_unseeded_random(tmp_path):
    root = _write_module(
        tmp_path, "import random\nx = random.randint(0, 9)\n")
    rules = {v.rule for v in lint.lint_tree(root)}
    assert rules == {"unseeded-random"}


def test_seeded_random_constructor_is_allowed(tmp_path):
    root = _write_module(
        tmp_path, "import random\nrng = random.Random(42)\n")
    assert lint.lint_tree(root) == []


def test_catches_datetime_now_and_urandom(tmp_path):
    root = _write_module(
        tmp_path,
        "import datetime, os\n"
        "a = datetime.datetime.now()\n"
        "b = os.urandom(8)\n",
    )
    rules = {v.rule for v in lint.lint_tree(root)}
    assert rules == {"datetime.now", "os.urandom"}


def test_catches_set_iteration(tmp_path):
    root = _write_module(
        tmp_path,
        "items = [3, 1, 2]\n"
        "for x in set(items):\n"
        "    print(x)\n"
        "ys = [y for y in {1, 2, 3}]\n",
    )
    violations = lint.lint_tree(root)
    assert len(violations) == 2
    assert {v.rule for v in violations} == {"set-iteration"}


def test_sorted_set_iteration_is_allowed(tmp_path):
    root = _write_module(
        tmp_path,
        "items = [3, 1, 2]\n"
        "for x in sorted(set(items)):\n"
        "    print(x)\n",
    )
    assert lint.lint_tree(root) == []


def test_allowlisted_site_is_skipped(tmp_path):
    root = _write_module(tmp_path, "import time\nx = time.time()\n")
    lint.ALLOWLIST[("fuzz/mod.py", "time.time")] = "test entry"
    try:
        assert lint.lint_tree(root) == []
    finally:
        del lint.ALLOWLIST[("fuzz/mod.py", "time.time")]


def test_stale_allowlist_entry_is_reported(tmp_path):
    root = _write_module(tmp_path, "x = 1\n")
    lint.ALLOWLIST[("fuzz/gone.py", "time.time")] = "stale entry"
    try:
        stale = lint.check_allowlist(root)
        assert any("gone.py" in s for s in stale)
    finally:
        del lint.ALLOWLIST[("fuzz/gone.py", "time.time")]


def test_cli_exit_codes(tmp_path, monkeypatch):
    # The real allowlist names repo files that a synthetic tree lacks;
    # empty it so the exit codes reflect only the synthetic violations.
    monkeypatch.setattr(lint, "ALLOWLIST", {})
    clean = _write_module(tmp_path / "clean", "x = 1\n")
    assert lint.main(["--root", str(clean)]) == 0
    dirty = _write_module(tmp_path / "dirty",
                          "import time\nx = time.time()\n")
    assert lint.main(["--root", str(dirty)]) == 1
    assert lint.main(["--root", str(tmp_path / "missing")]) == 2


def test_cli_real_tree_passes():
    assert lint.main(["--root", str(REPO_ROOT / "src" / "repro")]) == 0
