"""CLI and triage-report tests."""

from __future__ import annotations

import pytest

from repro.__main__ import build_parser, main
from repro.analysis.triage import triage_finding
from repro.kernel.config import PROFILES, Flaw
from repro.fuzz.campaign import Campaign, CampaignConfig


class TestCli:
    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["fuzz", "--budget", "5", "--seed", "3"])
        assert args.command == "fuzz"
        assert args.budget == 5

    def test_profiles_command(self, capsys):
        assert main(["profiles"]) == 0
        out = capsys.readouterr().out
        assert "bpf-next" in out
        assert "bug1-nullness-propagation" in out
        assert "(no injected bugs)" in out

    def test_fuzz_command_small(self, capsys):
        assert main(["fuzz", "--budget", "30", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "accepted" in out
        assert "Component" in out  # the bug table header

    def test_bench_command_small(self, capsys):
        assert main(["bench", "--budget", "20", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        for tool in ("bvf", "syzkaller", "buzzer"):
            assert tool in out

    def test_selftest_command_clean_on_patched(self, capsys):
        assert main(["selftest"]) == 0
        out = capsys.readouterr().out
        assert "0 verdict mismatches" in out


class TestTriage:
    @pytest.fixture(scope="class")
    def finding(self):
        result = Campaign(
            CampaignConfig(tool="bvf", kernel_version="bpf-next",
                           budget=600, seed=19)
        ).run()
        indicator1 = [
            f for f in result.findings.values() if f.indicator == "indicator1"
        ]
        assert indicator1, "campaign found no indicator-1 bug to triage"
        return indicator1[0]

    def test_report_renders(self, finding):
        report = triage_finding(finding, PROFILES["bpf-next"]())
        text = report.render()
        assert finding.bug_id in text
        assert "program (guilty instruction marked):" in text
        assert "verifier log" in text

    def test_guilty_instruction_located(self, finding):
        report = triage_finding(finding, PROFILES["bpf-next"]())
        if report.guilty_insn >= 0:
            assert ">>>" in report.listing
            marked = [l for l in report.listing.splitlines()
                      if l.startswith(">>>")]
            assert len(marked) == 1

    def test_triage_without_program(self):
        from repro.fuzz.oracle import BugFinding

        finding = BugFinding(
            bug_id="x", indicator="indicator2", report_kind="lockdep",
            message="m",
        )
        report = triage_finding(finding, PROFILES["patched"]())
        assert "(program unavailable)" in report.render()
