"""Interpreter semantics: ALU exactness, memory, calls, control flow."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.kernel.config import PROFILES
from repro.kernel.syscall import Kernel
from repro.ebpf import asm
from repro.ebpf.helpers import HelperId
from repro.ebpf.maps import MapType
from repro.ebpf.opcodes import AluOp, AtomicOp, JmpOp, Reg, Size
from repro.ebpf.program import BpfProgram, ProgType
from repro.runtime.executor import Executor

U64 = (1 << 64) - 1
U32 = (1 << 32) - 1


def run_prog(insns, prog_type=ProgType.SOCKET_FILTER, kernel=None):
    kernel = kernel or Kernel(PROFILES["patched"]())
    verified = kernel.prog_load(BpfProgram(insns=list(insns), prog_type=prog_type))
    result = Executor(kernel).run(verified)
    assert result.report is None, result.report
    return result.r0


def eval_alu64(op, a, b):
    """Run `r0 = a; r0 <op>= b; exit` through the whole stack."""
    return run_prog(
        [
            *asm.ld_imm64(Reg.R0, a),
            *asm.ld_imm64(Reg.R1, b),
            asm.alu64_reg(op, Reg.R0, Reg.R1),
            asm.exit_insn(),
        ]
    )


def eval_alu32(op, a, b):
    return run_prog(
        [
            *asm.ld_imm64(Reg.R0, a),
            *asm.ld_imm64(Reg.R1, b),
            asm.alu32_reg(op, Reg.R0, Reg.R1),
            asm.exit_insn(),
        ]
    )


def _s64(x):
    x &= U64
    return x - (1 << 64) if x >= (1 << 63) else x


def _s32(x):
    x &= U32
    return x - (1 << 32) if x >= (1 << 31) else x


_MODEL64 = {
    AluOp.ADD: lambda a, b: (a + b) & U64,
    AluOp.SUB: lambda a, b: (a - b) & U64,
    AluOp.MUL: lambda a, b: (a * b) & U64,
    AluOp.DIV: lambda a, b: a // b if b else 0,
    AluOp.MOD: lambda a, b: a % b if b else a,
    AluOp.OR: lambda a, b: a | b,
    AluOp.AND: lambda a, b: a & b,
    AluOp.XOR: lambda a, b: a ^ b,
    AluOp.LSH: lambda a, b: (a << (b & 63)) & U64,
    AluOp.RSH: lambda a, b: a >> (b & 63),
    AluOp.ARSH: lambda a, b: (_s64(a) >> (b & 63)) & U64,
}


class TestAluSemantics:
    @pytest.mark.parametrize("op", sorted(_MODEL64, key=int))
    def test_known_values_64(self, op):
        cases = [(0, 0), (1, 1), (U64, 1), (1 << 63, 63), (12345, 17)]
        for a, b in cases:
            assert eval_alu64(op, a, b) == _MODEL64[op](a, b), (op, a, b)

    @given(
        st.sampled_from(sorted(_MODEL64, key=int)),
        st.integers(min_value=0, max_value=U64),
        st.integers(min_value=0, max_value=U64),
    )
    def test_model_equivalence_64(self, op, a, b):
        assert eval_alu64(op, a, b) == _MODEL64[op](a, b)

    @given(
        st.sampled_from([AluOp.ADD, AluOp.SUB, AluOp.MUL, AluOp.XOR,
                         AluOp.OR, AluOp.AND]),
        st.integers(min_value=0, max_value=U64),
        st.integers(min_value=0, max_value=U64),
    )
    def test_alu32_truncates(self, op, a, b):
        expect = _MODEL64[op](a & U32, b & U32) & U32
        assert eval_alu32(op, a, b) == expect

    def test_div_by_zero_is_zero(self):
        assert eval_alu64(AluOp.DIV, 42, 0) == 0

    def test_mod_by_zero_keeps_dst(self):
        assert eval_alu64(AluOp.MOD, 42, 0) == 42

    def test_neg(self):
        assert run_prog(
            [
                asm.mov64_imm(Reg.R0, 5),
                asm.neg64(Reg.R0),
                asm.exit_insn(),
            ]
        ) == (-5) & U64

    def test_bswap(self):
        assert run_prog(
            [
                *asm.ld_imm64(Reg.R0, 0x11223344_55667788),
                asm.endian(Reg.R0, 64, to_big=True),
                asm.exit_insn(),
            ]
        ) == 0x88776655_44332211

    def test_to_le_truncates(self):
        assert run_prog(
            [
                *asm.ld_imm64(Reg.R0, 0x11223344_55667788),
                asm.endian(Reg.R0, 16, to_big=False),
                asm.exit_insn(),
            ]
        ) == 0x7788


class TestControlFlow:
    @pytest.mark.parametrize(
        "op,a,b,taken",
        [
            (JmpOp.JEQ, 5, 5, True),
            (JmpOp.JNE, 5, 5, False),
            (JmpOp.JGT, U64, 1, True),
            (JmpOp.JSGT, U64, 1, False),  # -1 s> 1 is false
            (JmpOp.JLT, 0, 1, True),
            (JmpOp.JSLT, U64, 0, True),  # -1 s< 0
            (JmpOp.JGE, 7, 7, True),
            (JmpOp.JLE, 8, 7, False),
            (JmpOp.JSET, 0b1010, 0b0010, True),
            (JmpOp.JSET, 0b1010, 0b0101, False),
        ],
    )
    def test_cond_jumps(self, op, a, b, taken):
        r0 = run_prog(
            [
                *asm.ld_imm64(Reg.R1, a),
                *asm.ld_imm64(Reg.R2, b),
                asm.jmp_reg(op, Reg.R1, Reg.R2, 2),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
                asm.mov64_imm(Reg.R0, 1),
                asm.exit_insn(),
            ]
        )
        assert r0 == (1 if taken else 0)

    def test_jmp32_compares_low_half(self):
        r0 = run_prog(
            [
                *asm.ld_imm64(Reg.R1, 0xFFFFFFFF_00000005),
                asm.jmp32_imm(JmpOp.JEQ, Reg.R1, 5, 2),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
                asm.mov64_imm(Reg.R0, 1),
                asm.exit_insn(),
            ]
        )
        assert r0 == 1

    def test_bounded_loop_counts(self):
        r0 = run_prog(
            [
                asm.mov64_imm(Reg.R0, 0),
                asm.mov64_imm(Reg.R1, 0),
                asm.alu64_imm(AluOp.ADD, Reg.R0, 2),
                asm.alu64_imm(AluOp.ADD, Reg.R1, 1),
                asm.jmp_imm(JmpOp.JLT, Reg.R1, 7, -3),
                asm.exit_insn(),
            ]
        )
        assert r0 == 14

    def test_subprog_call_and_return(self):
        r0 = run_prog(
            [
                asm.mov64_imm(Reg.R6, 100),
                asm.mov64_imm(Reg.R1, 11),
                asm.call_subprog(2),
                asm.alu64_reg(AluOp.ADD, Reg.R0, Reg.R6),
                asm.exit_insn(),
                # subprog: r0 = r1 * 3
                asm.mov64_reg(Reg.R0, Reg.R1),
                asm.alu64_imm(AluOp.MUL, Reg.R0, 3),
                asm.exit_insn(),
            ]
        )
        assert r0 == 133

    def test_subprog_has_own_stack(self):
        r0 = run_prog(
            [
                asm.st_mem(Size.DW, Reg.R10, -8, 11),
                asm.mov64_imm(Reg.R1, 0),
                asm.call_subprog(2),
                asm.ldx_mem(Size.DW, Reg.R0, Reg.R10, -8),
                asm.exit_insn(),
                asm.st_mem(Size.DW, Reg.R10, -8, 22),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ]
        )
        assert r0 == 11


class TestMemoryAndHelpers:
    def test_stack_store_load_sizes(self):
        for size, mask in ((Size.B, 0xFF), (Size.H, 0xFFFF),
                           (Size.W, U32), (Size.DW, U64)):
            r0 = run_prog(
                [
                    *asm.ld_imm64(Reg.R1, 0x1122334455667788),
                    asm.stx_mem(size, Reg.R10, Reg.R1, -8),
                    asm.ldx_mem(size, Reg.R0, Reg.R10, -8),
                    asm.exit_insn(),
                ]
            )
            assert r0 == 0x1122334455667788 & mask

    def test_memsx_sign_extends(self):
        kernel = Kernel(PROFILES["bpf-next"]())
        r0 = run_prog(
            [
                asm.st_mem(Size.B, Reg.R10, -1, 0xFF),
                asm.ldx_memsx(Size.B, Reg.R0, Reg.R10, -1),
                asm.exit_insn(),
            ],
            kernel=kernel,
        )
        assert r0 == U64  # -1 sign-extended

    @pytest.mark.parametrize(
        "op,start,operand,expect_mem,expect_reg",
        [
            (AtomicOp.ADD, 10, 3, 13, None),
            (AtomicOp.OR, 0b1100, 0b0011, 0b1111, None),
            (AtomicOp.AND, 0b1100, 0b0110, 0b0100, None),
            (AtomicOp.XOR, 0b1100, 0b1010, 0b0110, None),
            (AtomicOp.ADD | AtomicOp.FETCH, 10, 3, 13, 10),
            (AtomicOp.XCHG, 10, 3, 3, 10),
        ],
    )
    def test_atomics(self, op, start, operand, expect_mem, expect_reg):
        r0 = run_prog(
            [
                asm.st_mem(Size.DW, Reg.R10, -8, start),
                asm.mov64_imm(Reg.R1, operand),
                asm.mov64_imm(Reg.R0, 0),
                asm.atomic_op(Size.DW, op, Reg.R10, Reg.R1, -8),
                asm.ldx_mem(Size.DW, Reg.R0, Reg.R10, -8),
                # expose the fetched register value when relevant
                *( [asm.mov64_reg(Reg.R0, Reg.R1)] if expect_reg is not None else [] ),
                asm.exit_insn(),
            ]
        )
        assert r0 == (expect_reg if expect_reg is not None else expect_mem)

    def test_cmpxchg(self):
        r0 = run_prog(
            [
                asm.st_mem(Size.DW, Reg.R10, -8, 10),
                asm.mov64_imm(Reg.R0, 10),   # expected old value
                asm.mov64_imm(Reg.R1, 77),   # replacement
                asm.atomic_op(Size.DW, AtomicOp.CMPXCHG, Reg.R10, Reg.R1, -8),
                asm.ldx_mem(Size.DW, Reg.R0, Reg.R10, -8),
                asm.exit_insn(),
            ]
        )
        assert r0 == 77

    def test_map_roundtrip_through_program(self):
        kernel = Kernel(PROFILES["patched"]())
        fd = kernel.map_create(MapType.HASH, 8, 8, 4)
        r0 = run_prog(
            [
                # key = 1
                asm.st_mem(Size.DW, Reg.R10, -8, 1),
                asm.st_mem(Size.DW, Reg.R10, -16, 99),  # value
                *asm.ld_map_fd(Reg.R1, fd),
                asm.mov64_reg(Reg.R2, Reg.R10),
                asm.alu64_imm(AluOp.ADD, Reg.R2, -8),
                asm.mov64_reg(Reg.R3, Reg.R10),
                asm.alu64_imm(AluOp.ADD, Reg.R3, -16),
                asm.mov64_imm(Reg.R4, 0),
                asm.call_helper(HelperId.MAP_UPDATE_ELEM),
                # lookup and read back
                asm.st_mem(Size.DW, Reg.R10, -8, 1),
                *asm.ld_map_fd(Reg.R1, fd),
                asm.mov64_reg(Reg.R2, Reg.R10),
                asm.alu64_imm(AluOp.ADD, Reg.R2, -8),
                asm.call_helper(HelperId.MAP_LOOKUP_ELEM),
                asm.jmp_imm(JmpOp.JNE, Reg.R0, 0, 2),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
                asm.ldx_mem(Size.DW, Reg.R0, Reg.R0, 0),
                asm.exit_insn(),
            ],
            kernel=kernel,
        )
        assert r0 == 99
        assert kernel.map_lookup(fd, (1).to_bytes(8, "little")) == (99).to_bytes(
            8, "little"
        )

    def test_packet_read_sees_header(self):
        r0 = run_prog(
            [
                asm.ldx_mem(Size.W, Reg.R2, Reg.R1, 76),
                asm.ldx_mem(Size.W, Reg.R3, Reg.R1, 80),
                asm.mov64_reg(Reg.R4, Reg.R2),
                asm.alu64_imm(AluOp.ADD, Reg.R4, 1),
                asm.jmp_reg(JmpOp.JGT, Reg.R4, Reg.R3, 2),
                asm.ldx_mem(Size.B, Reg.R0, Reg.R2, 0),
                asm.exit_insn(),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ]
        )
        assert r0 == 0xFF  # first byte of the broadcast MAC

    def test_helper_clobbers_r1_r5_at_runtime(self):
        # The verifier rejects use of clobbered regs; at runtime they
        # hold poison values — this is observable only via helpers'
        # return in R0, so check R0 is the helper result.
        kernel = Kernel(PROFILES["patched"]())
        r0 = run_prog(
            [
                asm.call_helper(HelperId.GET_SMP_PROCESSOR_ID),
                asm.exit_insn(),
            ],
            kernel=kernel,
        )
        assert r0 == 0
