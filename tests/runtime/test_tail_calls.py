"""bpf_tail_call semantics: prog arrays, chaining, limits."""

from __future__ import annotations

import pytest

from repro.errors import VerifierReject
from repro.kernel.config import PROFILES
from repro.kernel.syscall import Kernel
from repro.ebpf import asm
from repro.ebpf.helpers import HelperId
from repro.ebpf.maps import MapType
from repro.ebpf.opcodes import AluOp, Reg, Size
from repro.ebpf.program import BpfProgram, ProgType
from repro.runtime.executor import Executor


def tail_caller(pa_fd: int, index: int, fallthrough_r0: int = 5) -> BpfProgram:
    return BpfProgram(
        insns=[
            asm.mov64_reg(Reg.R6, Reg.R1),
            asm.mov64_reg(Reg.R1, Reg.R6),
            *asm.ld_map_fd(Reg.R2, pa_fd),
            asm.mov64_imm(Reg.R3, index),
            asm.call_helper(HelperId.TAIL_CALL),
            asm.mov64_imm(Reg.R0, fallthrough_r0),
            asm.exit_insn(),
        ],
    )


class TestTailCall:
    def _kernel(self):
        kernel = Kernel(PROFILES["patched"]())
        pa_fd = kernel.map_create(MapType.PROG_ARRAY, 4, 4, 8)
        return kernel, pa_fd

    def test_successful_tail_call_switches_program(self):
        kernel, pa_fd = self._kernel()
        target = kernel.prog_load(
            BpfProgram(insns=[asm.mov64_imm(Reg.R0, 77), asm.exit_insn()])
        )
        kernel.map_update(pa_fd, (0).to_bytes(4, "little"),
                          target.fd.to_bytes(4, "little"))
        caller = kernel.prog_load(tail_caller(pa_fd, 0), sanitize=True)
        result = Executor(kernel).run(caller)
        assert result.report is None
        assert result.r0 == 77

    def test_empty_slot_falls_through(self):
        kernel, pa_fd = self._kernel()
        caller = kernel.prog_load(tail_caller(pa_fd, 3))
        result = Executor(kernel).run(caller)
        assert result.r0 == 5

    def test_out_of_range_index_falls_through(self):
        kernel, pa_fd = self._kernel()
        caller = kernel.prog_load(tail_caller(pa_fd, 100))
        result = Executor(kernel).run(caller)
        assert result.r0 == 5

    def test_wrong_prog_type_falls_through(self):
        kernel, pa_fd = self._kernel()
        target = kernel.prog_load(
            BpfProgram(
                insns=[asm.mov64_imm(Reg.R0, 2), asm.exit_insn()],
                prog_type=ProgType.XDP,
            )
        )
        kernel.map_update(pa_fd, (0).to_bytes(4, "little"),
                          target.fd.to_bytes(4, "little"))
        caller = kernel.prog_load(tail_caller(pa_fd, 0))
        result = Executor(kernel).run(caller)
        assert result.r0 == 5  # socket filter cannot enter an XDP prog

    def test_self_tail_call_bounded(self):
        """A program that tail-calls itself stops at MAX_TAIL_CALLS."""
        kernel, pa_fd = self._kernel()
        prog = kernel.prog_load(tail_caller(pa_fd, 0, fallthrough_r0=9))
        kernel.map_update(pa_fd, (0).to_bytes(4, "little"),
                          prog.fd.to_bytes(4, "little"))
        result = Executor(kernel).run(prog)
        assert result.report is None
        assert result.r0 == 9  # the 33rd attempt fell through

    def test_chain_of_programs(self):
        kernel, pa_fd = self._kernel()
        final = kernel.prog_load(
            BpfProgram(insns=[asm.mov64_imm(Reg.R0, 42), asm.exit_insn()])
        )
        middle = kernel.prog_load(tail_caller(pa_fd, 1))
        kernel.map_update(pa_fd, (0).to_bytes(4, "little"),
                          middle.fd.to_bytes(4, "little"))
        kernel.map_update(pa_fd, (1).to_bytes(4, "little"),
                          final.fd.to_bytes(4, "little"))
        entry = kernel.prog_load(tail_caller(pa_fd, 0), sanitize=True)
        result = Executor(kernel).run(entry)
        assert result.r0 == 42


class TestProgArrayVerifierRules:
    def test_hash_map_into_tail_call_rejected(self, patched_kernel):
        fd = patched_kernel.map_create(MapType.HASH, 8, 8, 4)
        with pytest.raises(VerifierReject) as exc:
            patched_kernel.prog_load(tail_caller(fd, 0))
        assert "cannot pass map_type" in exc.value.message

    def test_lookup_on_prog_array_rejected(self, patched_kernel):
        pa_fd = patched_kernel.map_create(MapType.PROG_ARRAY, 4, 4, 4)
        with pytest.raises(VerifierReject) as exc:
            patched_kernel.prog_load(
                BpfProgram(
                    insns=[
                        asm.st_mem(Size.W, Reg.R10, -8, 0),
                        *asm.ld_map_fd(Reg.R1, pa_fd),
                        asm.mov64_reg(Reg.R2, Reg.R10),
                        asm.alu64_imm(AluOp.ADD, Reg.R2, -8),
                        asm.call_helper(HelperId.MAP_LOOKUP_ELEM),
                        asm.mov64_imm(Reg.R0, 0),
                        asm.exit_insn(),
                    ]
                )
            )
        assert "cannot pass map_type" in exc.value.message

    def test_direct_value_access_rejected(self, patched_kernel):
        pa_fd = patched_kernel.map_create(MapType.PROG_ARRAY, 4, 4, 4)
        with pytest.raises(VerifierReject) as exc:
            patched_kernel.prog_load(
                BpfProgram(
                    insns=[
                        *asm.ld_map_value(Reg.R1, pa_fd, 0),
                        asm.mov64_imm(Reg.R0, 0),
                        asm.exit_insn(),
                    ]
                )
            )
        assert "direct value access" in exc.value.message

    def test_prog_array_value_size_must_be_4(self, patched_kernel):
        from repro.errors import MapError

        with pytest.raises(MapError):
            patched_kernel.map_create(MapType.PROG_ARRAY, 4, 8, 4)


class TestVerifierLogLevel2:
    def test_per_insn_logging(self, patched_kernel):
        from repro.verifier.core import Verifier

        prog = BpfProgram(
            insns=[asm.mov64_imm(Reg.R0, 7), asm.exit_insn()]
        )
        verifier = Verifier(patched_kernel, prog, log_level=2)
        verifier.verify()
        text = verifier.log.text()
        assert "r0 = 7" in text
        assert "R1=ptr_to_ctx" in text

    def test_level1_quiet_on_success(self, patched_kernel):
        from repro.verifier.core import Verifier

        prog = BpfProgram(
            insns=[asm.mov64_imm(Reg.R0, 7), asm.exit_insn()]
        )
        verifier = Verifier(patched_kernel, prog, log_level=1)
        verifier.verify()
        assert verifier.log.text() == ""
