"""Executor and runtime-context tests."""

from __future__ import annotations

import pytest

from repro.errors import KernelReport
from repro.kernel.config import PROFILES
from repro.kernel.syscall import Kernel
from repro.ebpf import asm
from repro.ebpf.helpers import HelperId
from repro.ebpf.opcodes import AluOp, Reg, Size
from repro.ebpf.program import BpfProgram, CONTEXTS, ProgType
from repro.runtime.context import build_context, release_context
from repro.runtime.executor import Executor, RunResult


def trivial(prog_type=ProgType.SOCKET_FILTER, r0=0):
    return BpfProgram(
        insns=[asm.mov64_imm(Reg.R0, r0), asm.exit_insn()], prog_type=prog_type
    )


class TestRuntimeContext:
    @pytest.mark.parametrize("prog_type", list(ProgType))
    def test_context_built_for_every_type(self, patched_kernel, prog_type):
        verified = patched_kernel.prog_load(trivial(prog_type))
        rt = build_context(patched_kernel.mem, verified)
        assert rt.ctx_alloc.size == CONTEXTS[prog_type].size
        assert rt.stack_alloc.size == 512
        release_context(patched_kernel.mem, rt)

    def test_packet_types_get_packets(self, patched_kernel):
        verified = patched_kernel.prog_load(trivial(ProgType.XDP))
        rt = build_context(patched_kernel.mem, verified)
        assert rt.pkt_alloc is not None
        assert len(rt.special_fields) == 3  # data, data_end, data_meta
        release_context(patched_kernel.mem, rt)

    def test_context_flags(self, patched_kernel):
        for prog_type, irq, nmi in (
            (ProgType.SOCKET_FILTER, False, False),
            (ProgType.KPROBE, True, False),
            (ProgType.PERF_EVENT, False, True),
            (ProgType.XDP, True, False),
        ):
            verified = patched_kernel.prog_load(trivial(prog_type))
            rt = build_context(patched_kernel.mem, verified)
            assert rt.in_irq == irq
            assert rt.in_nmi == nmi


class TestExecutor:
    def test_run_returns_r0(self, patched_kernel):
        verified = patched_kernel.prog_load(trivial(r0=7))
        result = Executor(patched_kernel).run(verified)
        assert isinstance(result, RunResult)
        assert result.r0 == 7
        assert not result.crashed

    def test_reports_captured_not_raised(self, bpf_next_kernel):
        prog = BpfProgram(
            insns=[
                asm.mov64_imm(Reg.R1, 9),
                asm.call_helper(HelperId.SEND_SIGNAL),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
            prog_type=ProgType.PERF_EVENT,
        )
        verified = bpf_next_kernel.prog_load(prog)
        result = Executor(bpf_next_kernel).run(verified)
        assert result.crashed
        assert isinstance(result.report, KernelReport)

    def test_lockdep_context_reset_between_runs(self, bpf_next_kernel):
        # A crashing run must not leave lock state that poisons the next.
        prog = BpfProgram(
            insns=[
                asm.mov64_reg(Reg.R1, Reg.R10),
                asm.alu64_imm(AluOp.ADD, Reg.R1, -8),
                asm.st_mem(Size.DW, Reg.R1, 0, 1),
                asm.mov64_imm(Reg.R2, 8),
                asm.call_helper(HelperId.TRACE_PRINTK),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
            prog_type=ProgType.KPROBE,
        )
        verified = bpf_next_kernel.prog_load(prog)
        bpf_next_kernel.prog_attach_tracepoint(verified, "bpf_trace_printk")
        executor = Executor(bpf_next_kernel)
        first = executor.run(verified)
        assert first.crashed
        bpf_next_kernel.reset_attachments()
        second = executor.run(verified)
        assert not second.crashed

    def test_trigger_tracepoint_runs_attached(self, patched_kernel):
        verified = patched_kernel.prog_load(trivial(ProgType.KPROBE, r0=1))
        patched_kernel.prog_attach_tracepoint(verified, "sys_enter")
        result = Executor(patched_kernel).trigger_tracepoint("sys_enter")
        assert not result.crashed

    def test_dispatcher_empty_is_noop(self, patched_kernel):
        result = Executor(patched_kernel).run_xdp_via_dispatcher()
        assert result.r0 == 0 and not result.crashed

    def test_stats_populated(self, patched_kernel):
        verified = patched_kernel.prog_load(
            BpfProgram(
                insns=[
                    asm.st_mem(Size.DW, Reg.R10, -8, 1),
                    asm.ldx_mem(Size.DW, Reg.R0, Reg.R10, -8),
                    asm.exit_insn(),
                ]
            )
        )
        result = Executor(patched_kernel).run(verified)
        assert result.stats.insns_executed == 3
        assert result.stats.loads == 1
        assert result.stats.stores == 1
