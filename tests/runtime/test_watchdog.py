"""Interpreter watchdog and raw-execution edge cases.

These drive the interpreter directly with hand-built VerifiedProgram
objects — bypassing the verifier, exactly the situation a verifier
correctness bug creates — to pin the runtime's last-line defences.
"""

from __future__ import annotations

import pytest

from repro.errors import KernelPanic, NullDerefReport
from repro.kernel.config import PROFILES
from repro.kernel.syscall import Kernel
from repro.ebpf import asm
from repro.ebpf.helpers import HelperContext
from repro.ebpf.opcodes import AluOp, Reg, Size
from repro.ebpf.program import BpfProgram, ProgType, VerifiedProgram
from repro.runtime.context import build_context, release_context
from repro.runtime.interpreter import Interpreter, MAX_RUNTIME_INSNS


def run_unverified(insns, prog_type=ProgType.SOCKET_FILTER):
    """Execute an instruction stream that never saw the verifier."""
    kernel = Kernel(PROFILES["patched"]())
    verified = VerifiedProgram(
        prog=BpfProgram(insns=list(insns), prog_type=prog_type),
        xlated=list(insns),
    )
    rt = build_context(kernel.mem, verified)
    ctx = HelperContext(kernel=kernel, prog=verified)
    try:
        return Interpreter(kernel, verified, rt, ctx).run()
    finally:
        release_context(kernel.mem, rt)


class TestWatchdog:
    def test_infinite_loop_soft_lockup(self):
        with pytest.raises(KernelPanic) as exc:
            run_unverified([asm.mov64_imm(Reg.R0, 0), asm.ja(-2)])
        assert "soft lockup" in str(exc.value)

    def test_budget_is_generous_for_real_programs(self):
        # A legitimate long loop (far beyond any verified program's
        # path length) still completes.
        n = 20_000
        r0 = run_unverified(
            [
                asm.mov64_imm(Reg.R0, 0),
                asm.alu64_imm(AluOp.ADD, Reg.R0, 1),
                asm.jmp_imm(asm.JmpOp.JLT, Reg.R0, n, -2),
                asm.exit_insn(),
            ]
        )
        assert r0 == n
        assert 3 * n < MAX_RUNTIME_INSNS


class TestUnverifiedExecution:
    def test_null_deref_faults(self):
        """What a correctness bug really does: crash on a null deref."""
        with pytest.raises(NullDerefReport):
            run_unverified(
                [
                    asm.mov64_imm(Reg.R1, 0),
                    asm.ldx_mem(Size.DW, Reg.R0, Reg.R1, 0),
                    asm.exit_insn(),
                ]
            )

    def test_wild_pointer_faults(self):
        with pytest.raises(KernelPanic):
            run_unverified(
                [
                    *asm.ld_imm64(Reg.R1, 0x4141414141414141),
                    asm.st_mem(Size.DW, Reg.R1, 0, 1),
                    asm.exit_insn(),
                ]
            )

    def test_small_stack_overflow_is_silent(self):
        """The indicator-#1 premise: near-miss OOB does NOT fault."""
        r0 = run_unverified(
            [
                asm.st_mem(Size.DW, Reg.R10, -520, 7),  # 8B below the stack
                asm.ldx_mem(Size.DW, Reg.R0, Reg.R10, -520),
                asm.exit_insn(),
            ]
        )
        assert r0 == 7  # silently corrupted, silently read back

    def test_ld_imm64_loads_full_value(self):
        r0 = run_unverified(
            [*asm.ld_imm64(Reg.R0, 0xFEDCBA9876543210), asm.exit_insn()]
        )
        assert r0 == 0xFEDCBA9876543210

    def test_uninitialised_registers_read_zero(self):
        # Raw hardware semantics: registers hold whatever is there (our
        # model: zero); only the verifier makes this an error.
        r0 = run_unverified(
            [asm.mov64_reg(Reg.R0, Reg.R7), asm.exit_insn()]
        )
        assert r0 == 0
