"""Verifier-log buffer and runtime-context lifecycle tests."""

from __future__ import annotations

import pytest

from repro.errors import KasanReport
from repro.kernel.config import PROFILES
from repro.kernel.syscall import Kernel
from repro.ebpf import asm
from repro.ebpf.opcodes import Reg
from repro.ebpf.program import BpfProgram, ProgType
from repro.runtime.context import build_context, release_context
from repro.verifier.log import VerifierLog


class TestVerifierLog:
    def test_accumulates(self):
        log = VerifierLog()
        log.write("one")
        log.write("two")
        assert log.text() == "one\ntwo"

    def test_level_zero_silent(self):
        log = VerifierLog(level=0)
        log.write("hidden")
        assert log.text() == ""

    def test_truncation(self):
        log = VerifierLog(limit=16)
        log.write("x" * 10)
        log.write("y" * 10)  # would exceed the limit
        log.write("z")
        assert log.truncated
        assert "y" not in log.text()
        assert "z" not in log.text()  # once truncated, stays truncated

    def test_insn_logging_gated_by_level(self):
        quiet = VerifierLog(level=1)
        quiet.insn(3, "r0 = 0")
        assert quiet.text() == ""
        verbose = VerifierLog(level=2)
        verbose.insn(3, "r0 = 0")
        assert "3: r0 = 0" in verbose.text()

    def test_rejection_carries_log(self):
        from repro.errors import VerifierReject

        kernel = Kernel(PROFILES["patched"]())
        prog = BpfProgram(insns=[asm.exit_insn()])
        with pytest.raises(VerifierReject) as exc:
            kernel.prog_load(prog, log_level=2)
        assert "R0 !read_ok" in exc.value.log


class TestContextLifecycle:
    def test_release_quarantines_allocations(self):
        kernel = Kernel(PROFILES["patched"]())
        verified = kernel.prog_load(
            BpfProgram(insns=[asm.mov64_imm(Reg.R0, 0), asm.exit_insn()],
                       prog_type=ProgType.XDP)
        )
        rt = build_context(kernel.mem, verified)
        ctx_addr = rt.ctx_addr
        release_context(kernel.mem, rt)
        with pytest.raises(KasanReport):
            kernel.mem.checked_read(ctx_addr, 4)

    def test_contexts_do_not_alias(self):
        kernel = Kernel(PROFILES["patched"]())
        verified = kernel.prog_load(
            BpfProgram(insns=[asm.mov64_imm(Reg.R0, 0), asm.exit_insn()])
        )
        a = build_context(kernel.mem, verified)
        b = build_context(kernel.mem, verified)
        assert a.ctx_addr != b.ctx_addr
        assert a.stack_alloc.start != b.stack_alloc.start
        release_context(kernel.mem, a)
        release_context(kernel.mem, b)

    def test_stack_top_is_frame_pointer(self):
        kernel = Kernel(PROFILES["patched"]())
        verified = kernel.prog_load(
            BpfProgram(insns=[asm.mov64_imm(Reg.R0, 0), asm.exit_insn()])
        )
        rt = build_context(kernel.mem, verified)
        assert rt.fp == rt.stack_alloc.start + 512
        # The whole 512-byte window below fp is valid kernel memory.
        kernel.mem.checked_write(rt.fp - 512, 8, 1)
        kernel.mem.checked_write(rt.fp - 8, 8, 1)
        release_context(kernel.mem, rt)
