"""Tracepoint registry and recursion semantics."""

from __future__ import annotations

import errno

import pytest

from repro.errors import BpfError, RecursionReport
from repro.kernel.config import PROFILES, Flaw
from repro.kernel.tracepoints import MAX_TRACE_RECURSION, TracepointRegistry


class FakeProg:
    def __init__(self, uses_lock_helpers=False):
        self.uses_lock_helpers = uses_lock_helpers


def make_registry(version="patched"):
    return TracepointRegistry(PROFILES[version]())


class TestRegistry:
    def test_default_tracepoints_present(self):
        reg = make_registry()
        names = reg.names()
        assert "contention_begin" in names
        assert "bpf_trace_printk" in names
        assert "perf_event_overflow" in names

    def test_unknown_tracepoint(self):
        reg = make_registry()
        with pytest.raises(BpfError) as exc:
            reg.get("no_such_tp")
        assert exc.value.errno == errno.ENOENT

    def test_attach_detach(self):
        reg = make_registry()
        prog = FakeProg()
        reg.attach(prog, "sys_enter")
        assert reg.attached("sys_enter") == [prog]
        reg.detach(prog, "sys_enter")
        assert reg.attached("sys_enter") == []


class TestLockSensitiveAttach:
    def test_fixed_kernel_refuses_lock_helpers(self):
        reg = make_registry("patched")
        with pytest.raises(BpfError) as exc:
            reg.attach(FakeProg(uses_lock_helpers=True), "contention_begin")
        assert exc.value.errno == errno.EINVAL

    def test_fixed_kernel_allows_lock_free_programs(self):
        reg = make_registry("patched")
        reg.attach(FakeProg(uses_lock_helpers=False), "contention_begin")

    def test_flawed_kernel_allows_attach(self):
        reg = make_registry("bpf-next")
        reg.attach(FakeProg(uses_lock_helpers=True), "contention_begin")
        reg.attach(FakeProg(uses_lock_helpers=True), "bpf_trace_printk")


class TestFiring:
    def test_fire_runs_attached(self):
        reg = make_registry()
        runs = []
        reg.runner = lambda prog, tp: runs.append((prog, tp))
        progs = [FakeProg(), FakeProg()]
        for p in progs:
            reg.attach(p, "sys_enter")
        reg.fire("sys_enter")
        assert [p for p, _ in runs] == progs

    def test_fire_without_attachments_is_noop(self):
        reg = make_registry()
        reg.runner = None
        reg.fire("sys_enter")  # must not need a runner

    def test_recursion_limit(self):
        reg = make_registry("bpf-next")
        depth = {"n": 0}

        def runner(prog, tp):
            depth["n"] += 1
            reg.fire(tp)  # the program re-fires its own tracepoint

        reg.runner = runner
        reg.attach(FakeProg(), "contention_begin")
        with pytest.raises(RecursionReport):
            reg.fire("contention_begin")
        assert depth["n"] == MAX_TRACE_RECURSION

    def test_detach_all(self):
        reg = make_registry()
        reg.attach(FakeProg(), "sys_enter")
        reg.detach_all()
        assert reg.attached("sys_enter") == []
