"""Locking-correctness validator tests."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import LockdepReport
from repro.kernel.lockdep import LockClass, Lockdep


A = LockClass("lock_a")
B = LockClass("lock_b")
C = LockClass("lock_c")
R = LockClass("lock_r", recursive=True)
S = LockClass("lock_s", sleeping=True)


class TestBasics:
    def test_acquire_release(self):
        ld = Lockdep()
        ld.acquire(A)
        assert ld.holds(A)
        ld.release(A)
        assert not ld.holds(A)
        ld.assert_clean()

    def test_recursive_self_deadlock(self):
        ld = Lockdep()
        ld.acquire(A)
        with pytest.raises(LockdepReport) as exc:
            ld.acquire(A)
        assert "recursive" in str(exc.value)

    def test_recursive_class_allowed(self):
        ld = Lockdep()
        ld.acquire(R)
        ld.acquire(R)  # no report
        ld.release(R)
        ld.release(R)

    def test_release_unheld(self):
        ld = Lockdep()
        with pytest.raises(LockdepReport):
            ld.release(A)

    def test_leaked_locks_detected(self):
        ld = Lockdep()
        ld.acquire(A)
        with pytest.raises(LockdepReport):
            ld.assert_clean()

    def test_contexts_are_independent(self):
        ld = Lockdep()
        ld.acquire(A, context=1)
        ld.acquire(A, context=2)  # different context: fine
        ld.release(A, context=1)
        ld.release(A, context=2)


class TestOrdering:
    def test_ab_ba_deadlock(self):
        ld = Lockdep()
        ld.acquire(A, context=1)
        ld.acquire(B, context=1)
        ld.release(B, context=1)
        ld.release(A, context=1)
        ld.acquire(B, context=2)
        with pytest.raises(LockdepReport) as exc:
            ld.acquire(A, context=2)
        assert "circular" in str(exc.value)

    def test_transitive_cycle(self):
        ld = Lockdep()
        ld.acquire(A, 1); ld.acquire(B, 1); ld.release(B, 1); ld.release(A, 1)
        ld.acquire(B, 2); ld.acquire(C, 2); ld.release(C, 2); ld.release(B, 2)
        ld.acquire(C, 3)
        with pytest.raises(LockdepReport):
            ld.acquire(A, 3)

    def test_consistent_order_is_fine(self):
        ld = Lockdep()
        for ctx in (1, 2, 3):
            ld.acquire(A, ctx)
            ld.acquire(B, ctx)
            ld.release(B, ctx)
            ld.release(A, ctx)


class TestIrqSemantics:
    def test_sleeping_lock_in_irq(self):
        ld = Lockdep()
        with pytest.raises(LockdepReport) as exc:
            ld.acquire(S, in_irq=True)
        assert "sleeping" in str(exc.value)

    def test_sleeping_lock_outside_irq_ok(self):
        ld = Lockdep()
        ld.acquire(S)
        ld.release(S)

    def test_inconsistent_state(self):
        ld = Lockdep()
        ld.acquire(A, context=1, in_irq=True)
        ld.release(A, context=1)
        with pytest.raises(LockdepReport) as exc:
            ld.acquire(A, context=2, in_irq=False)
        assert "inconsistent" in str(exc.value)


class TestRecordMode:
    def test_record_only(self):
        ld = Lockdep()
        ld.raise_on_report = False
        ld.acquire(A)
        ld.acquire(A)
        reports = ld.drain_reports()
        assert len(reports) == 1
        assert not ld.reports

    @given(st.lists(st.sampled_from([A, B, C]), max_size=12))
    def test_same_order_never_reports(self, locks):
        """Acquiring in a globally consistent order is always clean."""
        order = {"lock_a": 0, "lock_b": 1, "lock_c": 2}
        ld = Lockdep()
        for ctx, lock in enumerate(locks):
            chain = sorted(set([lock]), key=lambda l: order[l.name])
            for l in chain:
                ld.acquire(l, context=ctx)
            for l in reversed(chain):
                ld.release(l, context=ctx)
        ld.assert_clean()
