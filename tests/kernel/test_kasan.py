"""Shadow-memory (KASAN) model tests.

The raw/checked asymmetry is the substrate of indicator #1; these tests
pin down both paths plus the allocator's structural invariants.
"""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import KasanReport, KernelPanic, NullDerefReport
from repro.kernel.kasan import KERNEL_BASE, KernelMemory


class TestAllocator:
    def test_kmalloc_basic(self):
        mem = KernelMemory()
        a = mem.kmalloc(64, tag="t")
        assert a.size == 64
        assert a.start >= KERNEL_BASE
        assert not a.freed

    def test_allocations_do_not_overlap(self):
        mem = KernelMemory()
        allocs = [mem.kmalloc(sz) for sz in (1, 7, 8, 9, 64, 4096)]
        spans = sorted((a.start, a.end) for a in allocs)
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2

    def test_redzone_between_allocations(self):
        mem = KernelMemory()
        a = mem.kmalloc(8)
        b = mem.kmalloc(8)
        assert b.start - a.end >= 8  # alignment + redzone

    def test_kzalloc_zeroes(self):
        mem = KernelMemory()
        a = mem.kzalloc(32)
        assert mem.checked_read_bytes(a.start, 32) == b"\x00" * 32

    def test_arena_grows(self):
        mem = KernelMemory(arena_size=256)
        allocs = [mem.kmalloc(128) for _ in range(16)]
        assert len({a.start for a in allocs}) == 16

    def test_oversized_kmalloc_fails(self):
        mem = KernelMemory()
        with pytest.raises(MemoryError):
            mem.kmalloc((4 << 20) + 1)

    def test_non_positive_size_rejected(self):
        mem = KernelMemory()
        with pytest.raises(ValueError):
            mem.kmalloc(0)

    def test_find_allocation(self):
        mem = KernelMemory()
        a = mem.kmalloc(16)
        assert mem.find_allocation(a.start) is a
        assert mem.find_allocation(a.start + 15) is a
        assert mem.find_allocation(a.start + 16) is None

    def test_live_accounting(self):
        mem = KernelMemory()
        a = mem.kmalloc(10)
        b = mem.kmalloc(20)
        assert mem.live_bytes() == 30
        assert mem.allocation_count() == 2
        mem.kfree(a)
        assert mem.live_bytes() == 20
        assert mem.allocation_count() == 1


class TestCheckedPath:
    def test_rw_roundtrip(self):
        mem = KernelMemory()
        a = mem.kmalloc(16)
        mem.checked_write(a.start + 8, 8, 0xDEADBEEF)
        assert mem.checked_read(a.start + 8, 8) == 0xDEADBEEF

    def test_oob_read_trapped(self):
        mem = KernelMemory()
        a = mem.kmalloc(16)
        with pytest.raises(KasanReport) as exc:
            mem.checked_read(a.start + 9, 8)
        assert "out-of-bounds" in str(exc.value)

    def test_oob_write_trapped(self):
        mem = KernelMemory()
        a = mem.kmalloc(8)
        with pytest.raises(KasanReport):
            mem.checked_write(a.start + 8, 1, 0)

    def test_use_after_free_trapped(self):
        mem = KernelMemory()
        a = mem.kmalloc(8)
        mem.kfree(a)
        with pytest.raises(KasanReport) as exc:
            mem.checked_read(a.start, 8)
        assert "use-after-free" in str(exc.value)

    def test_double_free_trapped(self):
        mem = KernelMemory()
        a = mem.kmalloc(8)
        mem.kfree(a)
        with pytest.raises(KasanReport):
            mem.kfree(a)

    def test_unallocated_trapped(self):
        mem = KernelMemory()
        mem.kmalloc(8)
        with pytest.raises(KasanReport):
            mem.checked_read(KERNEL_BASE + (1 << 30), 8)

    def test_disabled_kasan_passes(self):
        mem = KernelMemory()
        a = mem.kmalloc(8)
        mem.kasan_enabled = False
        mem.shadow_check(a.start + 8, 8, is_write=False, who="t")  # no raise


class TestRawPath:
    def test_raw_rw(self):
        mem = KernelMemory()
        a = mem.kmalloc(16)
        mem.raw_write(a.start, 8, 0x1122334455667788)
        assert mem.raw_read(a.start, 8) == 0x1122334455667788

    def test_small_oob_is_silent(self):
        """The crux of indicator #1: JIT'd code corrupts silently."""
        mem = KernelMemory()
        a = mem.kmalloc(8)
        mem.raw_write(a.start + 8, 8, 0xFF)  # into the redzone: no trap
        assert mem.raw_read(a.start + 8, 8) == 0xFF

    def test_cross_object_corruption_is_silent(self):
        mem = KernelMemory()
        a = mem.kmalloc(8)
        b = mem.kmalloc(8)
        mem.raw_write(a.start, 8, 0)
        span = b.start - a.start
        mem.raw_write(a.start + span, 8, 0x42)  # actually hits b
        assert mem.checked_read(b.start, 8) == 0x42

    def test_null_page_faults(self):
        mem = KernelMemory()
        with pytest.raises(NullDerefReport):
            mem.raw_read(0, 8)
        with pytest.raises(NullDerefReport):
            mem.raw_write(8, 4, 1)

    def test_wild_address_faults(self):
        mem = KernelMemory()
        with pytest.raises(KernelPanic):
            mem.raw_read(0x4141414141414141, 8)

    def test_freed_memory_raw_readable(self):
        mem = KernelMemory()
        a = mem.kmalloc(8)
        mem.checked_write(a.start, 8, 77)
        mem.kfree(a)
        assert mem.raw_read(a.start, 8) == 77


class TestProperties:
    @given(st.lists(st.integers(min_value=1, max_value=512), min_size=1,
                    max_size=40))
    def test_every_live_byte_checked_readable(self, sizes):
        mem = KernelMemory()
        allocs = [mem.kmalloc(sz) for sz in sizes]
        for a in allocs:
            mem.checked_read(a.start, 1)
            mem.checked_read(a.end - 1, 1)

    @given(
        st.integers(min_value=1, max_value=128),
        st.integers(min_value=0, max_value=(1 << 64) - 1),
    )
    def test_value_roundtrip_any_size(self, size, value):
        mem = KernelMemory()
        a = mem.kmalloc(size)
        chunk = min(size, 8)
        value &= (1 << (chunk * 8)) - 1
        mem.checked_write(a.start, chunk, value)
        assert mem.checked_read(a.start, chunk) == value

    @given(st.integers(min_value=1, max_value=64),
           st.integers(min_value=1, max_value=64))
    def test_oob_always_detected_by_checked_path(self, size, excess):
        mem = KernelMemory()
        a = mem.kmalloc(size)
        with pytest.raises(KasanReport):
            mem.checked_read(a.start + size, excess)
