"""Unit tests for kernel/bugs.py and the kfunc registry."""

from __future__ import annotations

import pytest

from repro.errors import BpfError, NullDerefReport
from repro.kernel.bugs import Dispatcher, KMEMDUP_XLATED_LIMIT, dup_xlated_insns
from repro.kernel.config import PROFILES
from repro.kernel.syscall import Kernel
from repro.ebpf.helpers import HelperContext
from repro.ebpf.kfuncs import (
    KFUNC_GET_TASK,
    KFUNC_RAND,
    KFUNC_TASK_PID,
    KFUNCS,
)


class TestDispatcher:
    def test_single_program(self):
        d = Dispatcher(PROFILES["patched"]())
        d.update("prog")
        assert d.entry() == "prog"

    def test_fixed_update_is_synchronised(self):
        d = Dispatcher(PROFILES["patched"]())
        d.update("a")
        d.update("b")
        assert d.entry() == "b"

    def test_flawed_update_corrupts(self):
        d = Dispatcher(PROFILES["bpf-next"]())
        d.update("a")
        d.update("b")
        with pytest.raises(NullDerefReport):
            d.entry()
        # One oops per race; the slot is sane afterwards.
        assert d.entry() == "b"

    def test_remove_clears(self):
        d = Dispatcher(PROFILES["bpf-next"]())
        d.update("a")
        d.remove()
        assert d.entry() is None


class TestKmemdup:
    def test_small_duplication_always_works(self):
        for profile in ("patched", "bpf-next"):
            data = dup_xlated_insns(PROFILES[profile](), 10)
            assert len(data) == 80

    def test_flawed_fails_above_limit(self):
        n = KMEMDUP_XLATED_LIMIT // 8 + 1
        with pytest.raises(BpfError) as exc:
            dup_xlated_insns(PROFILES["bpf-next"](), n)
        assert "kmemdup" in exc.value.message

    def test_fixed_uses_kvmemdup(self):
        n = KMEMDUP_XLATED_LIMIT // 8 + 1
        data = dup_xlated_insns(PROFILES["patched"](), n)
        assert len(data) == n * 8


class TestKfuncs:
    def _ctx(self):
        return HelperContext(kernel=Kernel(PROFILES["patched"]()), prog=None)

    def test_registry_contents(self):
        assert set(KFUNCS) == {KFUNC_RAND, KFUNC_TASK_PID, KFUNC_GET_TASK}
        for proto in KFUNCS.values():
            assert proto.name.startswith("bpf_repro_")

    def test_rand_changes(self):
        ctx = self._ctx()
        impl = KFUNCS[KFUNC_RAND].impl
        values = {impl(ctx) for _ in range(5)}
        assert len(values) == 5

    def test_task_pid_reads_pid(self):
        ctx = self._ctx()
        task = ctx.kernel.btf.object(ctx.kernel.btf.current_task_id)
        assert KFUNCS[KFUNC_TASK_PID].impl(ctx, task.address) == 4242

    def test_task_pid_null_tolerant(self):
        ctx = self._ctx()
        assert KFUNCS[KFUNC_TASK_PID].impl(ctx, 0) == -1

    def test_get_task_returns_current(self):
        ctx = self._ctx()
        task = ctx.kernel.btf.object(ctx.kernel.btf.current_task_id)
        assert KFUNCS[KFUNC_GET_TASK].impl(ctx) == task.address
