"""bpf() syscall-surface tests."""

from __future__ import annotations

import errno

import pytest

from repro.errors import BpfError, VerifierReject
from repro.kernel.config import PROFILES, Flaw
from repro.kernel.syscall import Kernel
from repro.ebpf import asm
from repro.ebpf.maps import MapType
from repro.ebpf.opcodes import Reg
from repro.ebpf.program import BpfProgram, ProgType


def trivial_prog(prog_type=ProgType.SOCKET_FILTER):
    return BpfProgram(
        insns=[asm.mov64_imm(Reg.R0, 0), asm.exit_insn()], prog_type=prog_type
    )


class TestFdTable:
    def test_map_fds_sequential(self, patched_kernel):
        fd1 = patched_kernel.map_create(MapType.HASH, 8, 8, 4)
        fd2 = patched_kernel.map_create(MapType.ARRAY, 4, 8, 4)
        assert fd2 == fd1 + 1
        assert patched_kernel.map_by_fd(fd1).map_type == MapType.HASH

    def test_prog_fd_not_a_map(self, patched_kernel):
        verified = patched_kernel.prog_load(trivial_prog())
        assert patched_kernel.map_by_fd(verified.fd) is None
        assert patched_kernel.prog_by_fd(verified.fd) is verified

    def test_map_by_addr(self, patched_kernel):
        fd = patched_kernel.map_create(MapType.HASH, 8, 8, 4)
        bpf_map = patched_kernel.map_by_fd(fd)
        addr = patched_kernel.map_kobj_addr(bpf_map)
        assert patched_kernel.map_by_addr(addr) is bpf_map
        with pytest.raises(BpfError):
            patched_kernel.map_by_addr(0x1234)


class TestUserMapOps:
    def test_roundtrip(self, patched_kernel):
        fd = patched_kernel.map_create(MapType.HASH, 8, 8, 4)
        patched_kernel.map_update(fd, b"k" * 8, b"v" * 8)
        assert patched_kernel.map_lookup(fd, b"k" * 8) == b"v" * 8
        patched_kernel.map_delete(fd, b"k" * 8)
        assert patched_kernel.map_lookup(fd, b"k" * 8) is None

    def test_bad_fd(self, patched_kernel):
        with pytest.raises(BpfError) as exc:
            patched_kernel.map_update(99, b"k" * 8, b"v" * 8)
        assert exc.value.errno == errno.EBADF


class TestProgLoad:
    def test_load_assigns_fd(self, patched_kernel):
        verified = patched_kernel.prog_load(trivial_prog())
        assert verified.fd > 2
        assert verified in patched_kernel.loaded_programs

    def test_reject_propagates(self, patched_kernel):
        with pytest.raises(VerifierReject):
            patched_kernel.prog_load(BpfProgram(insns=[asm.exit_insn()]))

    def test_offload_flag_recorded(self, patched_kernel):
        prog = trivial_prog(ProgType.XDP)
        prog.offload_dev = "netdev0"
        verified = patched_kernel.prog_load(prog)
        assert getattr(verified, "offloaded", False)


class TestAttach:
    def test_socket_filter_cannot_attach_tracepoint(self, patched_kernel):
        verified = patched_kernel.prog_load(trivial_prog())
        with pytest.raises(BpfError):
            patched_kernel.prog_attach_tracepoint(verified, "sys_enter")

    def test_kprobe_attaches(self, patched_kernel):
        verified = patched_kernel.prog_load(trivial_prog(ProgType.KPROBE))
        patched_kernel.prog_attach_tracepoint(verified, "sys_enter")
        assert patched_kernel.tracepoints.attached("sys_enter") == [verified]

    def test_only_xdp_attaches_to_dispatcher(self, patched_kernel):
        verified = patched_kernel.prog_load(trivial_prog())
        with pytest.raises(BpfError):
            patched_kernel.prog_attach_xdp(verified)

    def test_reset_attachments(self, patched_kernel):
        verified = patched_kernel.prog_load(trivial_prog(ProgType.KPROBE))
        patched_kernel.prog_attach_tracepoint(verified, "sys_enter")
        patched_kernel.reset_attachments()
        assert patched_kernel.tracepoints.attached("sys_enter") == []


class TestDispatcherBug:
    def test_flawed_corruption_on_double_update(self, bpf_next_kernel):
        from repro.errors import NullDerefReport

        v = bpf_next_kernel.prog_load(trivial_prog(ProgType.XDP))
        bpf_next_kernel.prog_attach_xdp(v)
        bpf_next_kernel.prog_attach_xdp(v)
        with pytest.raises(NullDerefReport):
            bpf_next_kernel.dispatcher.entry()

    def test_single_attach_is_safe_even_flawed(self, bpf_next_kernel):
        v = bpf_next_kernel.prog_load(trivial_prog(ProgType.XDP))
        bpf_next_kernel.prog_attach_xdp(v)
        assert bpf_next_kernel.dispatcher.entry() is v


class TestKmemdupBug:
    def _big_prog(self):
        insns = []
        for _ in range(140):
            insns.append(asm.st_mem(asm.Size.DW, Reg.R10, -8, 1))
            insns.append(asm.ldx_mem(asm.Size.DW, Reg.R0, Reg.R10, -8))
        insns += [asm.mov64_imm(Reg.R0, 0), asm.exit_insn()]
        return BpfProgram(insns=insns)

    def test_flawed_info_enomem(self, bpf_next_kernel):
        verified = bpf_next_kernel.prog_load(self._big_prog(), sanitize=True)
        with pytest.raises(BpfError) as exc:
            bpf_next_kernel.prog_get_info(verified)
        assert exc.value.errno == errno.ENOMEM

    def test_fixed_info_ok(self, patched_kernel):
        verified = patched_kernel.prog_load(self._big_prog(), sanitize=True)
        info = patched_kernel.prog_get_info(verified)
        assert info["xlated_prog_len"] > 2048


class TestConfigProfiles:
    def test_profiles_exist(self):
        for name in ("v5.15", "v6.1", "bpf-next", "patched"):
            kernel = Kernel(PROFILES[name]())
            assert kernel.config.version in (name, "patched")

    def test_flaw_toggling(self):
        config = PROFILES["bpf-next"]()
        assert config.has_flaw(Flaw.NULLNESS_PROPAGATION)
        fixed = config.without_flaw(Flaw.NULLNESS_PROPAGATION)
        assert not fixed.has_flaw(Flaw.NULLNESS_PROPAGATION)
        again = fixed.with_flaw(Flaw.NULLNESS_PROPAGATION)
        assert again.has_flaw(Flaw.NULLNESS_PROPAGATION)

    def test_flaw_partition(self):
        config = PROFILES["bpf-next"]()
        assert len(config.verifier_flaws()) == 6  # bugs 1-6 (CVE fixed)
        assert len(config.component_flaws()) == 5  # bugs 7-11

    def test_patched_is_clean(self):
        config = PROFILES["patched"]()
        assert not config.flaws
