"""Structural properties of the self-test corpus itself."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.testsuite import all_selftests, all_selftests_extended


class TestCorpusShape:
    def test_names_unique(self):
        names = [t.name for t in all_selftests_extended()]
        duplicates = [n for n, c in Counter(names).items() if c > 1]
        assert not duplicates, duplicates

    def test_size_is_substantial(self):
        assert len(all_selftests()) >= 180
        assert len(all_selftests_extended()) >= 300

    def test_both_verdicts_represented(self):
        verdicts = Counter(t.expect for t in all_selftests_extended())
        assert verdicts["accept"] >= 150
        assert verdicts["reject"] >= 60

    def test_semantic_subset_annotated(self):
        semantic = [t for t in all_selftests_extended()
                    if t.expected_r0 is not None]
        assert len(semantic) >= 60
        assert all(t.expect == "accept" for t in semantic)

    def test_memory_access_flag_sane(self):
        corpus = all_selftests_extended()
        with_mem = [t for t in corpus if t.has_memory_access]
        without = [t for t in corpus if not t.has_memory_access]
        assert len(with_mem) >= 100
        assert len(without) >= 50

    def test_builders_are_idempotent(self):
        """Building twice in fresh kernels yields identical programs."""
        from repro.kernel.config import PROFILES
        from repro.kernel.syscall import Kernel

        for selftest in all_selftests_extended()[:40]:
            a = selftest.build(Kernel(PROFILES["patched"]()))
            b = selftest.build(Kernel(PROFILES["patched"]()))
            assert a.insns == b.insns, selftest.name
            assert a.prog_type == b.prog_type
